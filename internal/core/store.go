package core

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/cache"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/pooledcache"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// Store is the SDM tiered embedding store. It owns the SM devices, the FM
// row cache, the pooled embedding cache and the per-table placement state,
// and serves pooled embedding lookups with virtual-time accounting.
//
// Store methods must not be called concurrently: the discrete-event
// simulation that drives it is externally single-threaded. Internally,
// PoolQuery/PoolOps fan a query's operators across cfg.Parallelism workers
// (see parallel.go); the caches are sharded by table so that internal
// concurrency is lock-free and its accounting deterministic.
type Store struct {
	cfg   Config
	inst  *model.Instance
	clock *simclock.Clock

	devices []*blockdev.Device
	rings   []*uring.SyncRing
	mmaps   []*uring.Mmap

	// rowCache is the table-sharded aggregate view of the per-table FM
	// row-cache shards (the hot path uses tableState.cache directly).
	rowCache *cache.TableSharded

	plan   *placement.Plan
	tables []*tableState

	// loadDone is the virtual time at which model load (SM writes)
	// finished.
	loadDone simclock.Time

	stats Stats

	// maxRowBytes sizes per-worker scratch row buffers.
	maxRowBytes int
	// scratch holds one reusable row buffer per engine worker.
	scratch []*opScratch
	// opStamp/opGen detect duplicate tables in an op batch without
	// allocating (stamp[t] == gen means table t was already seen).
	opStamp []uint32
	opGen   uint32
	// ctxBuf holds reusable per-op execution contexts (their deferred-IO
	// slices keep capacity across queries), and opBatch/outBatch back the
	// single-op PoolOp wrapper, so the query hot path is allocation-light.
	ctxBuf   []opCtx
	opBatch  [1]workload.TableOp
	outBatch [1][][]float32
	// resBuf backs the OpResult slice PoolOps returns; the results of one
	// call are overwritten by the next (see PoolOps doc).
	resBuf []OpResult

	// shareMu guards sharedImages, the device media images handed to
	// replica stores (OpenReplica). Once populated, this store's devices
	// are copy-on-write.
	shareMu      sync.Mutex
	sharedImages [][]byte
}

// opScratch is the per-worker scratch state of the query engine.
type opScratch struct {
	buf []byte
}

// tableState is the runtime placement of one table.
type tableState struct {
	spec         embedding.Spec
	target       placement.Target
	cacheEnabled bool

	// swappable marks tables provisioned for runtime FM↔SM migration
	// (cfg.ReserveSM): an SM stripe is reserved and a cache shard exists
	// whichever tier the table currently occupies.
	swappable bool

	// Row-range residency (swappable tables only): rows partition into
	// fixed-width ranges of rangeRows rows (the last one may be short).
	// While target == SM, fmRange[r] holds range r's stored rows when the
	// range has been promoted to FM, nil while it serves from SM; a
	// whole-table promotion (target == FM) supersedes it. fmRangeBytes is
	// the stored bytes currently FM-resident through ranges, and
	// rangeLookups the per-range row-lookup counters, folded in operator
	// order like every other runtime counter.
	rangeRows    int64
	fmRange      [][]byte
	fmRangeBytes int64
	rangeLookups []uint64

	// migIn/migOut track the table's in-flight promotion/demotion (one
	// each), so UpdateRow can keep rows whose chunk already moved
	// coherent: an update racing an issued demote chunk writes through to
	// SM, one racing an issued promote chunk patches the staging image.
	migIn  *Migration
	migOut *Migration

	// runtime accumulates this table's runtime counters. The query engine
	// folds them in operator order, so they are parallelism-invariant.
	runtime Stats

	// fm is set for FM-direct tables.
	fm *embedding.Table

	// SM layout: rows stripe across devices; row r lives on device
	// r % numDevices at byte offset base + (r/numDevices)*rowBytes.
	smBase   []int64 // per device
	rowBytes int
	rows     int64

	// storedSpec may differ from spec when DequantAtLoad expands rows to
	// FP32 (QType and RowBytes change; Rows/Dim stay).
	storedSpec embedding.Spec

	// mapper is the pruned-index mapping tensor kept in FM (§4.5); nil
	// when the table is unpruned or was de-pruned at load.
	mapper []int32

	// cache is this table's FM row-cache shard (nil when caching is off
	// for the table) and cacheCPUCost its per-probe cost model.
	cache        cache.RowCache
	cacheCPUCost float64

	// pooled is this table's pooled-embedding-cache shard (§4.4), nil
	// unless the pooled cache is enabled and the table is SM-resident.
	pooled *pooledcache.Cache

	// throttle caps per-table outstanding IOs.
	throttle *ioThrottle
}

// Stats aggregates store counters.
type Stats struct {
	Lookups        uint64 // row lookups requested (post pooled-cache)
	SMReads        uint64 // row reads that went to a device
	FMDirectReads  uint64 // reads served from FM-direct tables or FM-resident ranges
	RangeFMReads   uint64 // subset of FMDirectReads served by FM-resident row ranges
	MapperSkips    uint64 // pruned rows resolved to zero via mapper
	ZeroRowReads   uint64 // de-pruned zero rows actually read (cache pollution)
	PooledHits     uint64
	PooledMisses   uint64
	FMBytesMoved   uint64 // FM bandwidth consumed by the IO path
	MapperFMBytes  int64  // FM consumed by mapper tensors
	EffCacheBytes  int64  // FM cache budget after mapper charge
	CPUTime        time.Duration
	LoadSMBytes    int64 // bytes written to SM at load
	LoadDuration   time.Duration
	DeprunedTables int

	// Adaptive-tiering counters: committed runtime placement swaps (and
	// the subset that moved row ranges rather than whole tables) plus the
	// migration bytes they moved through the devices.
	Migrations          int
	RangeMigrations     int
	MigratedSMToFMBytes uint64
	MigratedFMToSMBytes uint64
	// DemoteWriteBytes counts SM media bytes written by demotion Steps as
	// they issue (committed or not) — the endurance cost of tiering
	// decisions, accounted per table in TableStat so wear-aware placement
	// can see which tables churn the write budget. Like device
	// BytesWritten, it is endurance accounting and survives
	// ResetRuntimeStats.
	DemoteWriteBytes uint64
}

// Open loads a model into the SDM store: places tables per the plan,
// applies the load-time transformations (prune/de-prune/de-quantize),
// writes SM-resident tables to the devices (accounting write time and
// endurance), and sizes the FM caches. tables must be the materialized
// tables of inst (same order).
func Open(inst *model.Instance, tables []*embedding.Table, cfg Config, clock *simclock.Clock) (*Store, error) {
	cfg = cfg.Defaulted()
	if len(tables) != len(inst.Tables) {
		return nil, fmt.Errorf("core: %d tables for %d specs", len(tables), len(inst.Tables))
	}
	if cfg.ReserveSM && (cfg.Prune || cfg.Deprune || cfg.DequantAtLoad || cfg.UseMmap) {
		return nil, fmt.Errorf("core: ReserveSM requires identity load transforms and DIRECT_IO (no Prune/Deprune/DequantAtLoad/UseMmap)")
	}
	plan, err := placement.New(inst, cfg.Placement)
	if err != nil {
		return nil, fmt.Errorf("core: placement: %w", err)
	}
	s := &Store{cfg: cfg, inst: inst, clock: clock, plan: plan}

	if err := s.loadTables(tables); err != nil {
		return nil, err
	}
	if err := s.buildCaches(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenReplica builds a store identical to a freshly opened donor except
// for its seed-driven timing. Replica hosts in a fleet load the same
// tables through the same config, so the stored media bytes are identical
// across hosts; only the device RNG draws (and hence load timing) differ.
// Instead of re-running load transforms, staging stripes and filling
// per-device media, the replica shares the donor's post-load media images
// (copy-on-write, see blockdev.NewShared) and immutable metadata, and
// replays only the load timing through AccountWrite with its own RNG.
// Every observable — media contents, stats, device RNG state, load
// completion time — matches a full Open with the same cfg bit for bit;
// only the construction cost changes.
//
// cfg must equal the donor's config except for Seed, and the donor must
// not have executed queries or writes yet. Concurrent OpenReplica calls on
// one donor are safe; the replica itself follows the usual single-threaded
// Store contract.
func OpenReplica(donor *Store, cfg Config, clock *simclock.Clock) (*Store, error) {
	cfg = cfg.Defaulted()
	want := donor.cfg
	want.Seed = cfg.Seed
	if !reflect.DeepEqual(want, cfg) {
		return nil, fmt.Errorf("core: replica config differs from donor beyond Seed")
	}

	s := &Store{cfg: cfg, inst: donor.inst, clock: clock, plan: donor.plan}
	s.tables = make([]*tableState, len(donor.tables))
	for i, dt := range donor.tables {
		st := &tableState{
			spec:         dt.spec,
			target:       dt.target,
			cacheEnabled: dt.cacheEnabled,
			swappable:    dt.swappable,
			rangeRows:    dt.rangeRows,
			fm:           dt.fm,
			smBase:       dt.smBase, // fixed at load, never mutated after
			rowBytes:     dt.rowBytes,
			rows:         dt.rows,
			storedSpec:   dt.storedSpec,
			mapper:       dt.mapper, // read-only mapping tensor
		}
		if dt.rangeLookups != nil {
			st.rangeLookups = make([]uint64, len(dt.rangeLookups))
		}
		if cfg.PerTableOutstanding > 0 {
			st.throttle = &ioThrottle{cap: cfg.PerTableOutstanding}
		}
		s.tables[i] = st
	}
	s.stats.MapperFMBytes = donor.stats.MapperFMBytes
	s.stats.DeprunedTables = donor.stats.DeprunedTables

	donor.shareMu.Lock()
	if donor.sharedImages == nil {
		donor.sharedImages = make([][]byte, len(donor.devices))
		for d := range donor.devices {
			donor.sharedImages[d] = donor.devices[d].ShareImage()
		}
	}
	images := donor.sharedImages
	donor.shareMu.Unlock()

	nd := len(donor.devices)
	spec := blockdev.Spec(cfg.SMTech)
	s.devices = make([]*blockdev.Device, nd)
	s.rings = make([]*uring.SyncRing, nd)
	s.mmaps = make([]*uring.Mmap, nd)
	for d := range s.devices {
		s.devices[d] = blockdev.NewShared(spec, images[d], s.clock, cfg.Seed+uint64(d)*7919)
		s.rings[d] = uring.NewSync(s.devices[d], cfg.Ring)
		if cfg.UseMmap {
			s.mmaps[d] = uring.NewMmap(s.devices[d], s.clock, cfg.CacheBytes/int64(nd))
		}
	}

	// Replay the load-phase writes — same table order, stripe geometry and
	// chunking as loadTables — through AccountWrite: the bytes are already
	// on the shared image, so only timing, stats and RNG draws accrue.
	cursor := make([]int64, nd)
	var loadEnd simclock.Time
	for i, dt := range donor.tables {
		reserveOnly := dt.target == placement.FM && dt.swappable
		if dt.target != placement.SM && !reserveOnly {
			continue
		}
		rb := int64(dt.rowBytes)
		n := int64(nd)
		for d := int64(0); d < n; d++ {
			devBytes := ((dt.rows - d + n - 1) / n) * rb
			if reserveOnly {
				cursor[d] += devBytes
				continue
			}
			const chunk = 1 << 20
			for off := int64(0); off < devBytes; off += chunk {
				end := off + chunk
				if end > devBytes {
					end = devBytes
				}
				t, err := s.devices[d].AccountWrite(s.clock.Now(), cursor[d]+off, int(end-off))
				if err != nil {
					return nil, fmt.Errorf("core: replica load table %d: %w", i, err)
				}
				if t > loadEnd {
					loadEnd = t
				}
			}
			cursor[d] += devBytes
			s.stats.LoadSMBytes += devBytes
		}
	}
	s.maxRowBytes = donor.maxRowBytes
	s.opStamp = make([]uint32, len(s.tables))
	s.loadDone = loadEnd
	s.stats.LoadDuration = loadEnd.Duration()

	if err := s.buildCaches(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadTables applies load-time transformations and writes SM residents.
func (s *Store) loadTables(tables []*embedding.Table) error {
	// First pass: transform tables and compute SM footprint.
	type smLoad struct {
		idx   int
		table *embedding.Table
		// reserveOnly stripes the table's SM space without writing it:
		// the table starts FM-resident, the stripe exists so a runtime
		// demotion (cfg.ReserveSM) has somewhere to write.
		reserveOnly bool
	}
	var (
		loads   []smLoad
		smBytes int64
	)
	s.tables = make([]*tableState, len(tables))
	for i, t := range tables {
		st := &tableState{
			spec:         s.inst.Tables[i],
			target:       s.plan.Target(i),
			cacheEnabled: s.plan.CacheEnabled(i),
		}
		if s.cfg.PerTableOutstanding > 0 {
			st.throttle = &ioThrottle{cap: s.cfg.PerTableOutstanding}
		}
		if s.cfg.ReserveSM && s.cfg.Placement.EligibleSM(i, st.spec.Kind) {
			st.swappable = true
		}
		if st.swappable {
			// Row-range provisioning: the partial-migration grain, fixed
			// for the store's lifetime so range indices stay stable.
			rb := int64(st.spec.RowBytes())
			st.rangeRows = s.cfg.MigrationRangeBytes / rb
			if st.rangeRows < 1 {
				st.rangeRows = 1
			}
			st.rangeLookups = make([]uint64, (st.spec.Rows+st.rangeRows-1)/st.rangeRows)
		}
		if st.target == placement.FM {
			st.fm = t
			if st.swappable {
				// Identity load transforms (enforced with ReserveSM), so
				// the FM bytes are exactly what a demotion writes to SM.
				st.storedSpec = t.Spec()
				st.rowBytes = t.Spec().RowBytes()
				st.rows = t.Spec().Rows
				smBytes += t.Spec().SizeBytes()
				loads = append(loads, smLoad{idx: i, table: t, reserveOnly: true})
			}
			s.tables[i] = st
			continue
		}
		stored := t
		if s.cfg.Prune {
			pruned, err := embedding.PruneZeroRows(t, s.cfg.PruneEps)
			if err != nil {
				return fmt.Errorf("core: prune table %d: %w", i, err)
			}
			if s.cfg.Deprune {
				// Algorithm 2: materialize dense, drop the mapper.
				dt, err := pruned.Deprune()
				if err != nil {
					return fmt.Errorf("core: deprune table %d: %w", i, err)
				}
				stored = dt
				s.stats.DeprunedTables++
			} else {
				stored = pruned.Dense
				st.mapper = pruned.Mapper
				s.stats.MapperFMBytes += pruned.MapperBytes()
			}
		}
		if s.cfg.DequantAtLoad {
			dq, err := stored.Dequantize()
			if err != nil {
				return fmt.Errorf("core: dequantize table %d: %w", i, err)
			}
			stored = dq
		}
		st.storedSpec = stored.Spec()
		st.rowBytes = stored.Spec().RowBytes()
		st.rows = stored.Spec().Rows
		smBytes += stored.Spec().SizeBytes()
		loads = append(loads, smLoad{idx: i, table: stored})
		s.tables[i] = st
	}

	// Size and create devices.
	capPerDev := s.cfg.DeviceCapacity
	if capPerDev <= 0 {
		capPerDev = smBytes/int64(s.cfg.NumDevices) + smBytes/int64(4*s.cfg.NumDevices) + (4 << 20)
	}
	spec := blockdev.Spec(s.cfg.SMTech)
	s.devices = make([]*blockdev.Device, s.cfg.NumDevices)
	s.rings = make([]*uring.SyncRing, s.cfg.NumDevices)
	s.mmaps = make([]*uring.Mmap, s.cfg.NumDevices)
	for d := range s.devices {
		s.devices[d] = blockdev.New(spec, capPerDev, s.clock, s.cfg.Seed+uint64(d)*7919)
		s.rings[d] = uring.NewSync(s.devices[d], s.cfg.Ring)
		if s.cfg.UseMmap {
			// The mmap page cache competes for the same FM budget the
			// row cache would have used.
			s.mmaps[d] = uring.NewMmap(s.devices[d], s.clock, s.cfg.CacheBytes/int64(s.cfg.NumDevices))
		}
	}

	// Second pass: write SM residents, striping rows across devices. One
	// staging buffer (sized to the largest stripe) is reused for every
	// (table, device) pair.
	cursor := make([]int64, s.cfg.NumDevices)
	var loadEnd simclock.Time
	var maxRowBytes int
	var staging []byte
	for _, ld := range loads {
		st := s.tables[ld.idx]
		st.smBase = make([]int64, s.cfg.NumDevices)
		rb := int64(st.rowBytes)
		n := int64(s.cfg.NumDevices)
		rowsPerDev := make([]int64, s.cfg.NumDevices)
		for d := int64(0); d < n; d++ {
			rowsPerDev[d] = (st.rows - d + n - 1) / n
			st.smBase[d] = cursor[d]
		}
		// Bulk-write each device's stripe in 1 MiB chunks (reserve-only
		// stripes advance the cursor without touching the media).
		data := ld.table.Bytes()
		for d := int64(0); d < n; d++ {
			devBytes := rowsPerDev[d] * rb
			if cursor[d]+devBytes > s.devices[d].Capacity() {
				return fmt.Errorf("core: device %d overflow loading table %d (need %d, cap %d)",
					d, ld.idx, cursor[d]+devBytes, s.devices[d].Capacity())
			}
			if ld.reserveOnly {
				cursor[d] += devBytes
				continue
			}
			// Gather the stripe rows into the reused staging buffer.
			if int64(cap(staging)) < devBytes {
				staging = make([]byte, devBytes)
			}
			stripe := staging[:devBytes]
			for r := int64(0); r < rowsPerDev[d]; r++ {
				src := (r*n + d) * rb
				copy(stripe[r*rb:(r+1)*rb], data[src:src+rb])
			}
			const chunk = 1 << 20
			for off := int64(0); off < devBytes; off += chunk {
				end := off + chunk
				if end > devBytes {
					end = devBytes
				}
				t, err := s.devices[d].Write(s.clock.Now(), stripe[off:end], cursor[d]+off)
				if err != nil {
					return fmt.Errorf("core: load table %d: %w", ld.idx, err)
				}
				if t > loadEnd {
					loadEnd = t
				}
			}
			cursor[d] += devBytes
			s.stats.LoadSMBytes += devBytes
		}
		if st.rowBytes > maxRowBytes {
			maxRowBytes = st.rowBytes
		}
	}
	if maxRowBytes < 4096 {
		maxRowBytes = 4096
	}
	s.maxRowBytes = maxRowBytes
	s.opStamp = make([]uint32, len(s.tables))
	s.loadDone = loadEnd
	s.stats.LoadDuration = loadEnd.Duration()
	return nil
}

// buildCaches sizes the FM caches after mapper tensors take their cut.
// Both the row cache and the pooled cache are sharded by table: each
// cache-enabled SM table gets its own shard with a budget proportional to
// its stored bytes. Independent table operators therefore share no cache
// state, which is what lets the parallel query engine run them on any
// worker in any order with bit-identical results.
func (s *Store) buildCaches() error {
	eff := s.cfg.CacheBytes - s.stats.MapperFMBytes - s.cfg.PooledCacheBytes
	if eff < 1<<12 {
		eff = 1 << 12
	}
	s.stats.EffCacheBytes = eff

	// Row-cache shards, budget ∝ stored SM bytes. Swappable tables get a
	// shard whichever tier they start in, so a runtime demotion finds its
	// cache already provisioned (and still warm from any earlier SM stint).
	s.rowCache = cache.NewTableSharded()
	var cached []*tableState
	var totalBytes int64
	for _, st := range s.tables {
		if !st.cacheEnabled || (st.target != placement.SM && !st.swappable) {
			continue
		}
		cached = append(cached, st)
		totalBytes += st.storedSpec.SizeBytes()
	}
	remaining := eff
	for i, st := range cached {
		budget := remaining
		if i < len(cached)-1 {
			budget = int64(float64(eff) * float64(st.storedSpec.SizeBytes()) / float64(totalBytes))
		}
		if budget < 1<<12 {
			budget = 1 << 12
		}
		remaining -= budget
		if remaining < 0 {
			remaining = 0
		}
		shard, err := s.mkCacheShard(budget, st.rowBytes)
		if err != nil {
			return err
		}
		st.cache = shard
		st.cacheCPUCost = shard.CPUCostPerGet()
		s.rowCache.Add(int32(st.spec.ID), shard)
	}

	// Pooled-cache shards: the §4.4 budget splits evenly across the SM
	// tables it can serve.
	if s.cfg.PooledCacheBytes > 0 {
		var smTables []*tableState
		for _, st := range s.tables {
			if st.target == placement.SM || st.swappable {
				smTables = append(smTables, st)
			}
		}
		if n := int64(len(smTables)); n > 0 {
			pcfg := s.cfg.pooledConfig()
			pcfg.CapacityBytes /= n
			if pcfg.CapacityBytes < 1<<12 {
				pcfg.CapacityBytes = 1 << 12
			}
			for _, st := range smTables {
				st.pooled = pooledcache.New(pcfg)
			}
		}
	}
	return nil
}

// mkCacheShard builds one table's row-cache shard. Rows of a table are
// uniform-size, so the dual organization resolves per table: a shard holds
// either small rows (memory-optimized, slots sized to the row) or large
// rows (CPU-optimized) — the paper's dim≤255 routing with no per-probe
// dispatch.
func (s *Store) mkCacheShard(budget int64, rowBytes int) (cache.RowCache, error) {
	slot := rowBytes
	if slot > s.cfg.CacheSplitBytes {
		slot = s.cfg.CacheSplitBytes
	}
	mk := func(budget int64) cache.RowCache {
		switch s.cfg.CacheKind {
		case CacheMemOptimized:
			return cache.NewMemOptimized(budget, slot)
		case CacheCPUOptimized:
			return cache.NewCPUOptimized(budget)
		default:
			if rowBytes <= s.cfg.CacheSplitBytes {
				return cache.NewMemOptimized(budget, slot)
			}
			return cache.NewCPUOptimized(budget)
		}
	}
	if s.cfg.CachePartitions > 1 {
		return cache.NewPartitioned(s.cfg.CachePartitions, budget, mk)
	}
	return mk(budget), nil
}

// Config returns the (defaulted) store configuration.
func (s *Store) Config() Config { return s.cfg }

// Instance returns the model instance being served.
func (s *Store) Instance() *model.Instance { return s.inst }

// Plan returns the placement plan in effect.
func (s *Store) Plan() *placement.Plan { return s.plan }

// LoadDone returns the virtual time at which model load completed.
func (s *Store) LoadDone() simclock.Time { return s.loadDone }

// Stats returns a snapshot of store counters.
func (s *Store) Stats() Stats { return s.stats }

// CacheStats returns the FM row-cache counters.
func (s *Store) CacheStats() cache.Stats { return s.rowCache.Stats() }

// PooledStats sums the pooled-cache counters across the per-table shards
// (zero if disabled).
func (s *Store) PooledStats() pooledcache.Stats {
	var agg pooledcache.Stats
	for _, st := range s.tables {
		if st.pooled != nil {
			agg = agg.Add(st.pooled.Stats())
		}
	}
	return agg
}

// DeviceStats sums the counters across SM devices.
func (s *Store) DeviceStats() blockdev.Stats {
	var agg blockdev.Stats
	for _, d := range s.devices {
		ds := d.Stats()
		agg.Reads += ds.Reads
		agg.Writes += ds.Writes
		agg.MediaBytes += ds.MediaBytes
		agg.BusBytes += ds.BusBytes
		agg.RequestedBytes += ds.RequestedBytes
		agg.TailEvents += ds.TailEvents
		agg.BytesWritten += ds.BytesWritten
	}
	return agg
}

// RingStats sums the IO-ring counters across devices.
func (s *Store) RingStats() uring.Stats {
	var agg uring.Stats
	for _, r := range s.rings {
		rs := r.Stats()
		agg.Submitted += rs.Submitted
		agg.Completed += rs.Completed
		agg.Errors += rs.Errors
		agg.CPUTime += rs.CPUTime
		if rs.PeakInflight > agg.PeakInflight {
			agg.PeakInflight = rs.PeakInflight
		}
	}
	return agg
}

// ResetRuntimeStats clears per-run counters (not load accounting) so a
// steady-state window can be measured after warmup.
func (s *Store) ResetRuntimeStats() {
	mapperFM := s.stats.MapperFMBytes
	eff := s.stats.EffCacheBytes
	loadB := s.stats.LoadSMBytes
	loadD := s.stats.LoadDuration
	dep := s.stats.DeprunedTables
	s.stats = Stats{
		MapperFMBytes: mapperFM, EffCacheBytes: eff,
		LoadSMBytes: loadB, LoadDuration: loadD, DeprunedTables: dep,
		Migrations:          s.stats.Migrations,
		RangeMigrations:     s.stats.RangeMigrations,
		MigratedSMToFMBytes: s.stats.MigratedSMToFMBytes,
		MigratedFMToSMBytes: s.stats.MigratedFMToSMBytes,
		DemoteWriteBytes:    s.stats.DemoteWriteBytes,
	}
	// Per-table runtime counters reset with the aggregates they sum to,
	// keeping TableStats coherent with Stats across the reset (endurance
	// accounting, like device BytesWritten, survives).
	for _, st := range s.tables {
		st.runtime = Stats{DemoteWriteBytes: st.runtime.DemoteWriteBytes}
		for r := range st.rangeLookups {
			st.rangeLookups[r] = 0
		}
	}
	for _, d := range s.devices {
		d.ResetStats()
	}
	// Cache contents survive (warm cache); only counters reset.
	// RowCache has no counter-only reset, so track via snapshot deltas
	// instead when needed; here we leave cache stats cumulative.
}

// smLocation returns the device and offset of row r of table state st.
func (s *Store) smLocation(st *tableState, r int64) (dev int, off int64) {
	n := int64(s.cfg.NumDevices)
	dev = int(r % n)
	off = st.smBase[dev] + (r/n)*int64(st.rowBytes)
	return dev, off
}

// ioThrottle caps per-table outstanding IOs using completion timestamps.
type ioThrottle struct {
	cap      int
	inflight simclock.TimeHeap
	// drained batches completed-entry cleanup across a query's ops: every
	// IO of an op is admitted at the same issue time, so after one drain
	// at time t nothing new can complete at or before t (completions are
	// strictly after their start). Skipping the re-scan is therefore
	// accounting-neutral — the same entries are dropped either way.
	drained simclock.Time
}

// admit returns the earliest start time for a new IO issued at now and
// records completion bookkeeping via release.
func (t *ioThrottle) admit(now simclock.Time) simclock.Time {
	if now > t.drained {
		for t.inflight.Len() > 0 && t.inflight.Min() <= now {
			t.inflight.PopMin()
		}
		t.drained = now
	}
	start := now
	for t.inflight.Len() >= t.cap {
		if v := t.inflight.PopMin(); v > start {
			start = v
		}
	}
	return start
}

func (t *ioThrottle) release(done simclock.Time) {
	t.inflight.Push(done)
}
