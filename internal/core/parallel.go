// The sharded parallel query engine. A query's TableOps execute in two
// phases:
//
//  1. A functional phase fans the ops across cfg.Parallelism workers. Each
//     op touches only state owned by its table — the per-table row-cache
//     shard, pooled-cache shard and mapper — plus worker-local scratch, so
//     no locks are taken. SM row data is copied out immediately (device
//     contents are immutable during a query), but the read's *timing* is
//     only recorded as a deferred IO.
//  2. A replay phase walks the ops in index order on the calling goroutine
//     and books every deferred IO through the per-table throttle, the
//     io_uring model and the device channel/RNG model — exactly the
//     sequence a single-threaded execution would have produced.
//
// Because phase 1 mutates only order-independent state and phase 2 is
// totally ordered, virtual-time accounting, statistics and cache contents
// are bit-identical at every Parallelism setting; only wall-clock time
// changes.

package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sdm/internal/placement"
	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// SetParallelism sets the query-engine worker count for subsequent
// queries; p <= 0 selects GOMAXPROCS. It must not be called concurrently
// with queries. Accounting is unaffected — see Config.Parallelism.
func (s *Store) SetParallelism(p int) {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	s.cfg.Parallelism = p
}

// Parallelism returns the effective worker count of the query engine.
func (s *Store) Parallelism() int { return s.cfg.Parallelism }

// PoolOps executes a batch of operators issued at the same virtual time
// and returns one OpResult per op. It is PoolQuery without the
// user/item-side aggregation, for callers (like the serving host) that
// classify ops themselves. On error no results, counters or SM timing are
// recorded, though cache shards retain rows fetched before the failure —
// identically at every Parallelism setting.
//
// The returned slice is backed by store-owned scratch and is only valid
// until the next PoolOps/PoolQuery/PoolOp call; copy any OpResult that
// must outlive it.
func (s *Store) PoolOps(now simclock.Time, ops []workload.TableOp, outs [][][]float32) ([]OpResult, error) {
	if len(outs) != len(ops) {
		return nil, fmt.Errorf("core: %d output sets for %d ops", len(outs), len(ops))
	}
	// Upfront validation, plus duplicate-table detection: two ops on the
	// same table would share a cache shard, so such batches (never emitted
	// by the workload generator) run the functional phase sequentially.
	s.opGen++
	dupTables := false
	for i, op := range ops {
		if op.Table < 0 || op.Table >= len(s.tables) {
			return nil, fmt.Errorf("core: op table %d out of range", op.Table)
		}
		if len(outs[i]) != len(op.Pools) {
			return nil, fmt.Errorf("core: %d output slices for %d pools", len(outs[i]), len(op.Pools))
		}
		dim := s.tables[op.Table].spec.Dim
		for b := range op.Pools {
			if len(outs[i][b]) != dim {
				return nil, fmt.Errorf("core: out[%d] dim %d, want %d", b, len(outs[i][b]), dim)
			}
		}
		if s.opStamp[op.Table] == s.opGen {
			dupTables = true
		}
		s.opStamp[op.Table] = s.opGen
	}

	immediate := s.cfg.UseMmap // mmap shares a page cache across tables
	workers := 1
	if !immediate && !dupTables {
		workers = s.cfg.Parallelism
		if workers > len(ops) {
			workers = len(ops)
		}
		if workers < 1 {
			workers = 1
		}
	}
	scratch := s.scratchFor(workers)

	ctxs := s.ctxsFor(len(ops))
	var err error
	if workers <= 1 {
		// Closure-free single-worker path: with Parallelism 1 the
		// functional phase allocates nothing. Error semantics match
		// runIndexed — every op runs, the lowest-index error wins.
		for i := range ops {
			if e := s.execOp(ctxs, scratch, ops, outs, now, immediate, 0, i); e != nil && err == nil {
				err = e
			}
		}
	} else {
		err = runIndexed(len(ops), workers, func(worker, i int) error {
			return s.execOp(ctxs, scratch, ops, outs, now, immediate, worker, i)
		})
	}
	if err != nil {
		return nil, err
	}

	// Deterministic merge: replay deferred IO and fold per-op counters in
	// operator order.
	if cap(s.resBuf) < len(ops) {
		s.resBuf = make([]OpResult, len(ops))
	}
	results := s.resBuf[:len(ops)]
	for i := range ctxs {
		c := &ctxs[i]
		if !c.immediate {
			if err := s.replayIO(c); err != nil {
				return nil, err
			}
		}
		s.stats.addRuntime(c.stats)
		c.st.runtime.addRuntime(c.stats)
		for r, v := range c.rlk {
			c.st.rangeLookups[r] += v
		}
		s.stats.CPUTime += c.res.CPUTime
		results[i] = c.res
	}
	return results, nil
}

// execOp prepares op i's context and runs its functional phase on the
// given worker's scratch.
func (s *Store) execOp(ctxs []opCtx, scratch []*opScratch, ops []workload.TableOp, outs [][][]float32, now simclock.Time, immediate bool, worker, i int) error {
	c := &ctxs[i]
	c.st = s.tables[ops[i].Table]
	c.now = now
	c.res.IODone = now
	c.buf = scratch[worker].buf
	c.immediate = immediate
	if c.st.rangeLookups != nil && c.st.target == placement.SM {
		c.rlk = zeroedRanges(c.rlk, len(c.st.rangeLookups))
	} else {
		c.rlk = nil
	}
	return s.runOp(c, ops[i], outs[i])
}

// replayIO books the timing of an op's deferred SM reads in issue order,
// reproducing the inline path: per-table throttle admission, ring
// submission, device channel booking, throttle release.
func (s *Store) replayIO(c *opCtx) error {
	st := c.st
	for _, io := range c.reads {
		start := c.now
		if st.throttle != nil {
			start = st.throttle.admit(c.now)
		}
		done, err := s.rings[io.dev].SubmitTimedRead(start, io.n, io.off)
		if err != nil {
			return fmt.Errorf("core: SM read table %d: %w", st.spec.ID, err)
		}
		if st.throttle != nil {
			st.throttle.release(done)
		}
		if done > c.res.IODone {
			c.res.IODone = done
		}
	}
	return nil
}

// addRuntime folds an op's runtime counter deltas into s (load-time fields
// are never touched by op execution).
func (s *Stats) addRuntime(d Stats) {
	s.Lookups += d.Lookups
	s.SMReads += d.SMReads
	s.FMDirectReads += d.FMDirectReads
	s.RangeFMReads += d.RangeFMReads
	s.MapperSkips += d.MapperSkips
	s.ZeroRowReads += d.ZeroRowReads
	s.PooledHits += d.PooledHits
	s.PooledMisses += d.PooledMisses
	s.FMBytesMoved += d.FMBytesMoved
}

// scratchFor returns n per-worker scratch slots, growing the pool lazily.
func (s *Store) scratchFor(n int) []*opScratch {
	for len(s.scratch) < n {
		s.scratch = append(s.scratch, &opScratch{buf: make([]byte, s.maxRowBytes)})
	}
	return s.scratch[:n]
}

// ctxsFor returns n reset per-op contexts, reusing their deferred-IO
// slice capacity across calls.
func (s *Store) ctxsFor(n int) []opCtx {
	for len(s.ctxBuf) < n {
		s.ctxBuf = append(s.ctxBuf, opCtx{})
	}
	ctxs := s.ctxBuf[:n]
	for i := range ctxs {
		reads := ctxs[i].reads
		rlk := ctxs[i].rlk
		ctxs[i] = opCtx{reads: reads[:0], rlk: rlk[:0]}
	}
	return ctxs
}

// zeroedRanges returns dst resized to n with every element zero, reusing
// its capacity.
func zeroedRanges(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// runIndexed runs fn(worker, i) for i in [0, n) across the given worker
// count and reports the lowest-index error. Every index runs even when an
// earlier one fails — matching the concurrent schedule, where later ops
// are already in flight when an error surfaces — so the state left behind
// by a failed batch is identical at every worker count.
func runIndexed(n, workers int, fn func(worker, i int) error) error {
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
