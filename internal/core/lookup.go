package core

import (
	"fmt"
	"time"

	"sdm/internal/cache"
	"sdm/internal/placement"
	"sdm/internal/quant"
	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// OpResult reports the virtual-time accounting of one embedding operator.
type OpResult struct {
	// IODone is the completion time of the slowest SM IO issued for the
	// op (== the issue time when everything hit FM or cache).
	IODone simclock.Time
	// CPUTime is the host CPU consumed by the op (cache probes,
	// dequantization, pooling, hashing, copies).
	CPUTime time.Duration
	// SMReads is the number of device row reads the op required.
	SMReads int
}

// PoolOp executes one embedding operator (Algorithm 1 with the full SDM
// path): for each pool in the op it consults the pooled embedding cache,
// then per index resolves pruning mappers, probes the FM row cache, reads
// missing rows from SM, and dequantizes+pools into out[b].
//
// out must have one slice per pool, each len == the table's Dim. now is the
// virtual issue time; the result carries IO completion and CPU cost so the
// caller (the host simulator) can overlap user- and item-side work per
// Eq. 3.
func (s *Store) PoolOp(now simclock.Time, op workload.TableOp, out [][]float32) (OpResult, error) {
	if op.Table < 0 || op.Table >= len(s.tables) {
		return OpResult{}, fmt.Errorf("core: op table %d out of range", op.Table)
	}
	if len(out) != len(op.Pools) {
		return OpResult{}, fmt.Errorf("core: %d output slices for %d pools", len(out), len(op.Pools))
	}
	st := s.tables[op.Table]
	res := OpResult{IODone: now}

	for b, pool := range op.Pools {
		if len(out[b]) != st.spec.Dim {
			return res, fmt.Errorf("core: out[%d] dim %d, want %d", b, len(out[b]), st.spec.Dim)
		}
		if err := s.poolOne(now, st, pool, out[b], &res); err != nil {
			return res, err
		}
	}
	s.stats.CPUTime += res.CPUTime
	return res, nil
}

// poolOne pools one index sequence for one batch element.
func (s *Store) poolOne(now simclock.Time, st *tableState, pool []int64, out []float32, res *OpResult) error {
	// Pooled embedding cache (§4.4, Algorithm 1).
	usePooled := s.pooled != nil && st.target == placement.SM
	if usePooled {
		res.CPUTime += time.Duration(len(pool)) * costHashPerIndex
		if vec := s.pooled.Get(int32(st.spec.ID), pool); vec != nil {
			copy(out, vec)
			res.CPUTime += perByteCost(costPooledCopyByteNs, 4*len(out))
			s.stats.PooledHits++
			return nil
		}
		s.stats.PooledMisses++
	}

	for i := range out {
		out[i] = 0
	}

	if st.target == placement.FM {
		// Direct FM placement: plain memory pooling, no cache overhead —
		// the baseline SDM competes with in Fig. 6.
		if err := st.fm.Pool(out, pool); err != nil {
			return err
		}
		n := len(pool)
		s.stats.Lookups += uint64(n)
		s.stats.FMDirectReads += uint64(n)
		res.CPUTime += perByteCost(costFMReadPerByteNs+costDequantPerByteNs, n*st.spec.RowBytes())
		return nil
	}

	for _, idx := range pool {
		s.stats.Lookups++
		row := idx
		// Pruned tables resolve through the FM mapper tensor (§4.5).
		if st.mapper != nil {
			res.CPUTime += costMapperLookup
			if row < 0 || row >= int64(len(st.mapper)) {
				return fmt.Errorf("core: index %d out of mapper range %d", row, len(st.mapper))
			}
			m := st.mapper[row]
			if m < 0 {
				s.stats.MapperSkips++
				continue // pruned row: contributes zero
			}
			row = int64(m)
		}
		if err := s.fetchAndAccumulate(now, st, row, out, res); err != nil {
			return err
		}
	}

	if usePooled {
		s.pooled.Put(int32(st.spec.ID), pool, out)
		res.CPUTime += perByteCost(costPooledCopyByteNs, 4*len(out))
	}
	return nil
}

// fetchAndAccumulate obtains stored row bytes (cache → SM) and accumulates
// the dequantized row into out.
func (s *Store) fetchAndAccumulate(now simclock.Time, st *tableState, row int64, out []float32, res *OpResult) error {
	rb := st.rowBytes
	buf := s.rowBuf[:rb]
	key := cache.Key{Table: int32(st.spec.ID), Row: row}

	if st.cacheEnabled && !s.cfg.UseMmap {
		res.CPUTime += time.Duration(float64(costCacheGetBase) * s.rowCache.CPUCostPerGet())
		if n, ok := s.rowCache.Get(key, buf); ok {
			res.CPUTime += perByteCost(costDequantPerByteNs, n)
			return quant.AccumulateRow(out, buf[:n], st.storedSpec.QType)
		}
	}

	dev, off := s.smLocation(st, row)
	start := now
	if st.throttle != nil {
		start = st.throttle.admit(now)
	}

	var (
		done simclock.Time
		err  error
	)
	if s.cfg.UseMmap {
		done, err = s.mmaps[dev].Read(start, buf, off)
	} else {
		done, err = s.rings[dev].SubmitSync(start, buf, off, false)
	}
	if err != nil {
		return fmt.Errorf("core: SM read table %d row %d: %w", st.spec.ID, row, err)
	}
	if st.throttle != nil {
		st.throttle.release(done)
	}
	if done > res.IODone {
		res.IODone = done
	}
	res.SMReads++
	s.stats.SMReads++
	if isZeroRow(buf, st.storedSpec.QType) {
		s.stats.ZeroRowReads++
	}

	if !s.cfg.Ring.SGL && !s.cfg.UseMmap {
		// Without SGL the host reads a whole block into an aligned
		// bounce buffer and copies the row out — "more than 2X FM BW
		// needed for every X data pulled in from SM" (§4.3).
		blk := s.devices[dev].Spec().AccessGranularity
		if blk > rb {
			s.stats.FMBytesMoved += uint64(blk + rb)
			res.CPUTime += perByteCost(costMemcpyPerByteNs, blk+rb)
		} else {
			s.stats.FMBytesMoved += uint64(2 * rb)
			res.CPUTime += perByteCost(costMemcpyPerByteNs, 2*rb)
		}
	} else {
		// SGL lands the row directly in cache storage (§4.3).
		s.stats.FMBytesMoved += uint64(rb)
		res.CPUTime += perByteCost(costMemcpyPerByteNs, rb)
	}

	if st.cacheEnabled && !s.cfg.UseMmap {
		s.rowCache.Put(key, buf)
		res.CPUTime += costCachePut
	}
	res.CPUTime += perByteCost(costDequantPerByteNs, rb)
	return quant.AccumulateRow(out, buf, st.storedSpec.QType)
}

// isZeroRow reports whether a stored row dequantizes to all zeros — used
// to count the de-pruning cache-pollution effect (§4.5). Zero rows encode
// with scale=1, bias=0 and zero codes under both int encodings, and as all
// zero bytes under FP32/FP16, so a byte scan suffices for the int paths.
func isZeroRow(row []byte, qt quant.Type) bool {
	switch qt {
	case quant.Int8, quant.Int4:
		n := len(row) - 8
		for _, b := range row[:n] {
			if b != 0 {
				return false
			}
		}
		// scale==1, bias==0 → bytes 0,0,128,63 , 0,0,0,0
		meta := row[n:]
		return meta[0] == 0 && meta[1] == 0 && meta[2] == 0x80 && meta[3] == 0x3f &&
			meta[4] == 0 && meta[5] == 0 && meta[6] == 0 && meta[7] == 0
	default:
		for _, b := range row {
			if b != 0 {
				return false
			}
		}
		return true
	}
}

// PoolQuery executes every operator of a query and returns the aggregate
// accounting: the user-side and item-side IO completions separately (so the
// caller can apply Eq. 3's overlap) and the summed CPU time.
type QueryResult struct {
	UserIODone simclock.Time
	ItemIODone simclock.Time
	CPUTime    time.Duration
	SMReads    int
}

// PoolQuery runs all ops of q at virtual time now, writing pooled outputs
// into outs (outs[i][b] is op i, pool b; dims must match). Ops are issued
// concurrently (inter-op parallelism): each op sees the same issue time.
func (s *Store) PoolQuery(now simclock.Time, q workload.Query, outs [][][]float32) (QueryResult, error) {
	var res QueryResult
	res.UserIODone, res.ItemIODone = now, now
	for i, op := range q.Ops {
		r, err := s.PoolOp(now, op, outs[i])
		if err != nil {
			return res, err
		}
		res.CPUTime += r.CPUTime
		res.SMReads += r.SMReads
		if op.Table < s.inst.Config.NumUserTables {
			if r.IODone > res.UserIODone {
				res.UserIODone = r.IODone
			}
		} else {
			if r.IODone > res.ItemIODone {
				res.ItemIODone = r.IODone
			}
		}
	}
	return res, nil
}

// AllocOutputs builds the output buffers for a query against this store's
// model (helper for tests, examples and the serving simulator).
func (s *Store) AllocOutputs(q workload.Query) [][][]float32 {
	outs := make([][][]float32, len(q.Ops))
	for i, op := range q.Ops {
		dim := s.inst.Tables[op.Table].Dim
		pools := make([][]float32, len(op.Pools))
		for b := range op.Pools {
			pools[b] = make([]float32, dim)
		}
		outs[i] = pools
	}
	return outs
}
