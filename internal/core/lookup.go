package core

import (
	"fmt"
	"time"

	"sdm/internal/cache"
	"sdm/internal/placement"
	"sdm/internal/quant"
	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// OpResult reports the virtual-time accounting of one embedding operator.
type OpResult struct {
	// IODone is the completion time of the slowest SM IO issued for the
	// op (== the issue time when everything hit FM or cache).
	IODone simclock.Time
	// CPUTime is the host CPU consumed by the op (cache probes,
	// dequantization, pooling, hashing, copies).
	CPUTime time.Duration
	// SMReads is the number of device row reads the op required.
	SMReads int
}

// deferredIO is one SM row read whose data was already copied out during
// the functional phase; its timing is replayed in operator order.
type deferredIO struct {
	dev int
	off int64
	n   int
}

// opCtx is the execution state of one TableOp inside the query engine:
// operator-local accounting plus the deferred IO trace. Everything an
// operator mutates through an opCtx is either local to it or owned by its
// table (cache shard, pooled shard), so operators on distinct tables can
// run on different workers.
type opCtx struct {
	st  *tableState
	now simclock.Time
	res OpResult
	// stats accumulates runtime counter deltas, merged into Store.stats
	// in operator order after the functional phase.
	stats Stats
	// buf is the worker's scratch row buffer.
	buf []byte
	// rlk accumulates per-row-range lookup deltas for range-provisioned
	// SM tables (nil otherwise), merged into the table state in operator
	// order alongside stats.
	rlk []uint64
	// reads is the deferred IO trace (unused in immediate mode).
	reads []deferredIO
	// immediate times IOs inline through the legacy path (mmap ablation);
	// it requires single-worker execution.
	immediate bool
}

// PoolOp executes one embedding operator (Algorithm 1 with the full SDM
// path): for each pool in the op it consults the pooled embedding cache,
// then per index resolves pruning mappers, probes the FM row cache, reads
// missing rows from SM, and dequantizes+pools into out[b].
//
// out must have one slice per pool, each len == the table's Dim. now is the
// virtual issue time; the result carries IO completion and CPU cost so the
// caller (the host simulator) can overlap user- and item-side work per
// Eq. 3.
//
// PoolOp stages the op through store-owned scratch (s.opBatch/s.outBatch),
// which is what makes the single-op path allocation-free. Like every Store
// method it must not be called concurrently — the scratch is the seam that
// would break first (see the Store doc's single-threaded contract).
func (s *Store) PoolOp(now simclock.Time, op workload.TableOp, out [][]float32) (OpResult, error) {
	s.opBatch[0] = op
	s.outBatch[0] = out
	rs, err := s.PoolOps(now, s.opBatch[:], s.outBatch[:])
	s.outBatch[0] = nil
	if err != nil {
		return OpResult{IODone: now}, err
	}
	return rs[0], nil
}

// runOp executes one operator's functional phase against c.
func (s *Store) runOp(c *opCtx, op workload.TableOp, out [][]float32) error {
	for b, pool := range op.Pools {
		if err := s.poolOne(c, pool, out[b]); err != nil {
			return err
		}
	}
	return nil
}

// poolOne pools one index sequence for one batch element.
func (s *Store) poolOne(c *opCtx, pool []int64, out []float32) error {
	st := c.st
	// Pooled embedding cache (§4.4, Algorithm 1) — sharded per table.
	usePooled := st.pooled != nil && st.target == placement.SM
	if usePooled {
		c.res.CPUTime += time.Duration(len(pool)) * costHashPerIndex
		if vec := st.pooled.Get(int32(st.spec.ID), pool); vec != nil {
			copy(out, vec)
			c.res.CPUTime += perByteCost(costPooledCopyByteNs, 4*len(out))
			c.stats.PooledHits++
			return nil
		}
		c.stats.PooledMisses++
	}

	for i := range out {
		out[i] = 0
	}

	if st.target == placement.FM {
		// Direct FM placement: plain memory pooling, no cache overhead —
		// the baseline SDM competes with in Fig. 6.
		if err := st.fm.Pool(out, pool); err != nil {
			return err
		}
		n := len(pool)
		c.stats.Lookups += uint64(n)
		c.stats.FMDirectReads += uint64(n)
		c.res.CPUTime += perByteCost(costFMReadPerByteNs+costDequantPerByteNs, n*st.spec.RowBytes())
		return nil
	}

	for _, idx := range pool {
		c.stats.Lookups++
		row := idx
		// Pruned tables resolve through the FM mapper tensor (§4.5).
		if st.mapper != nil {
			c.res.CPUTime += costMapperLookup
			if row < 0 || row >= int64(len(st.mapper)) {
				return fmt.Errorf("core: index %d out of mapper range %d", row, len(st.mapper))
			}
			m := st.mapper[row]
			if m < 0 {
				c.stats.MapperSkips++
				continue // pruned row: contributes zero
			}
			row = int64(m)
		}
		if err := s.fetchAndAccumulate(c, row, out); err != nil {
			return err
		}
	}

	if usePooled {
		st.pooled.Put(int32(st.spec.ID), pool, out)
		c.res.CPUTime += perByteCost(costPooledCopyByteNs, 4*len(out))
	}
	return nil
}

// fetchAndAccumulate obtains stored row bytes (cache shard → SM) and
// accumulates the dequantized row into out. In deferred mode the SM data is
// copied immediately but the device/ring timing is recorded for replay.
func (s *Store) fetchAndAccumulate(c *opCtx, row int64, out []float32) error {
	st := c.st
	rb := st.rowBytes
	if c.rlk != nil {
		c.rlk[row/st.rangeRows]++
	}
	// FM-resident row range (partial-table promotion): plain memory read,
	// no cache probe — the per-range analogue of the FM-direct fast path.
	if b := st.fmRangeRow(row); b != nil {
		c.stats.FMDirectReads++
		c.stats.RangeFMReads++
		c.res.CPUTime += perByteCost(costFMReadPerByteNs+costDequantPerByteNs, rb)
		return quant.AccumulateRow(out, b, st.storedSpec.QType)
	}
	buf := c.buf[:rb]
	key := cache.Key{Table: int32(st.spec.ID), Row: row}

	if st.cacheEnabled && !s.cfg.UseMmap {
		c.res.CPUTime += time.Duration(float64(costCacheGetBase) * st.cacheCPUCost)
		if n, ok := st.cache.Get(key, buf); ok {
			c.res.CPUTime += perByteCost(costDequantPerByteNs, n)
			return quant.AccumulateRow(out, buf[:n], st.storedSpec.QType)
		}
	}

	dev, off := s.smLocation(st, row)
	if c.immediate {
		start := c.now
		if st.throttle != nil {
			start = st.throttle.admit(c.now)
		}
		var (
			done simclock.Time
			err  error
		)
		if s.cfg.UseMmap {
			done, err = s.mmaps[dev].Read(start, buf, off)
		} else {
			done, err = s.rings[dev].SubmitSync(start, buf, off, false)
		}
		if err != nil {
			return fmt.Errorf("core: SM read table %d row %d: %w", st.spec.ID, row, err)
		}
		if st.throttle != nil {
			st.throttle.release(done)
		}
		if done > c.res.IODone {
			c.res.IODone = done
		}
	} else {
		if err := s.devices[dev].PeekInto(buf, off); err != nil {
			return fmt.Errorf("core: SM read table %d row %d: %w", st.spec.ID, row, err)
		}
		c.reads = append(c.reads, deferredIO{dev: dev, off: off, n: rb})
	}
	c.res.SMReads++
	c.stats.SMReads++
	if isZeroRow(buf, st.storedSpec.QType) {
		c.stats.ZeroRowReads++
	}

	if !s.cfg.Ring.SGL && !s.cfg.UseMmap {
		// Without SGL the host reads a whole block into an aligned
		// bounce buffer and copies the row out — "more than 2X FM BW
		// needed for every X data pulled in from SM" (§4.3).
		blk := s.devices[dev].Spec().AccessGranularity
		if blk > rb {
			c.stats.FMBytesMoved += uint64(blk + rb)
			c.res.CPUTime += perByteCost(costMemcpyPerByteNs, blk+rb)
		} else {
			c.stats.FMBytesMoved += uint64(2 * rb)
			c.res.CPUTime += perByteCost(costMemcpyPerByteNs, 2*rb)
		}
	} else {
		// SGL lands the row directly in cache storage (§4.3).
		c.stats.FMBytesMoved += uint64(rb)
		c.res.CPUTime += perByteCost(costMemcpyPerByteNs, rb)
	}

	if st.cacheEnabled && !s.cfg.UseMmap {
		st.cache.Put(key, buf)
		c.res.CPUTime += costCachePut
	}
	c.res.CPUTime += perByteCost(costDequantPerByteNs, rb)
	return quant.AccumulateRow(out, buf, st.storedSpec.QType)
}

// isZeroRow reports whether a stored row dequantizes to all zeros — used
// to count the de-pruning cache-pollution effect (§4.5). Zero rows encode
// with scale=1, bias=0 and zero codes under both int encodings, and as all
// zero bytes under FP32/FP16, so a byte scan suffices for the int paths.
func isZeroRow(row []byte, qt quant.Type) bool {
	switch qt {
	case quant.Int8, quant.Int4:
		n := len(row) - 8
		for _, b := range row[:n] {
			if b != 0 {
				return false
			}
		}
		// scale==1, bias==0 → bytes 0,0,128,63 , 0,0,0,0
		meta := row[n:]
		return meta[0] == 0 && meta[1] == 0 && meta[2] == 0x80 && meta[3] == 0x3f &&
			meta[4] == 0 && meta[5] == 0 && meta[6] == 0 && meta[7] == 0
	default:
		for _, b := range row {
			if b != 0 {
				return false
			}
		}
		return true
	}
}

// QueryResult is the aggregate accounting of one query: the user-side and
// item-side IO completions separately (so the caller can apply Eq. 3's
// overlap) and the summed CPU time.
type QueryResult struct {
	UserIODone simclock.Time
	ItemIODone simclock.Time
	CPUTime    time.Duration
	SMReads    int
}

// PoolQuery runs all ops of q at virtual time now, writing pooled outputs
// into outs (outs[i][b] is op i, pool b; dims must match). Ops are issued
// concurrently (inter-op parallelism): each op sees the same issue time.
// With cfg.Parallelism > 1 the ops also execute concurrently on the host
// running the simulation; accounting is identical either way.
func (s *Store) PoolQuery(now simclock.Time, q workload.Query, outs [][][]float32) (QueryResult, error) {
	res := QueryResult{UserIODone: now, ItemIODone: now}
	rs, err := s.PoolOps(now, q.Ops, outs)
	if err != nil {
		return res, err
	}
	for i, op := range q.Ops {
		r := rs[i]
		res.CPUTime += r.CPUTime
		res.SMReads += r.SMReads
		if op.Table < s.inst.Config.NumUserTables {
			if r.IODone > res.UserIODone {
				res.UserIODone = r.IODone
			}
		} else {
			if r.IODone > res.ItemIODone {
				res.ItemIODone = r.IODone
			}
		}
	}
	return res, nil
}

// AllocOutputs builds fresh output buffers for a query against this
// store's model (helper for tests and examples). Hot loops should reuse an
// OutputBuf via OutputsFor instead.
func (s *Store) AllocOutputs(q workload.Query) [][][]float32 {
	outs := make([][][]float32, len(q.Ops))
	for i, op := range q.Ops {
		dim := s.inst.Tables[op.Table].Dim
		pools := make([][]float32, len(op.Pools))
		for b := range op.Pools {
			pools[b] = make([]float32, dim)
		}
		outs[i] = pools
	}
	return outs
}

// OutputBuf recycles query output tensors across calls: one flat float32
// backing resliced into per-op, per-pool views. The zero value is ready to
// use.
type OutputBuf struct {
	flat  []float32
	pools [][]float32
	outs  [][][]float32
}

// OutputsFor returns output buffers shaped for q, reusing b's storage; the
// views are valid until the next OutputsFor call on b. Contents are not
// zeroed — PoolQuery/PoolOps overwrite every element they report.
func (s *Store) OutputsFor(q workload.Query, b *OutputBuf) [][][]float32 {
	nPools, nFloats := 0, 0
	for _, op := range q.Ops {
		nPools += len(op.Pools)
		nFloats += len(op.Pools) * s.inst.Tables[op.Table].Dim
	}
	if cap(b.flat) < nFloats {
		b.flat = make([]float32, nFloats)
	}
	if cap(b.pools) < nPools {
		b.pools = make([][]float32, nPools)
	}
	if cap(b.outs) < len(q.Ops) {
		b.outs = make([][][]float32, len(q.Ops))
	}
	flat, pools := b.flat[:nFloats], b.pools[:nPools]
	outs := b.outs[:len(q.Ops)]
	fo, po := 0, 0
	for i, op := range q.Ops {
		dim := s.inst.Tables[op.Table].Dim
		n := len(op.Pools)
		for p := 0; p < n; p++ {
			pools[po+p] = flat[fo : fo+dim : fo+dim]
			fo += dim
		}
		outs[i] = pools[po : po+n : po+n]
		po += n
	}
	return outs
}
