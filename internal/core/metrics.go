package core

import (
	"strconv"

	"sdm/internal/metrics"
	"sdm/internal/simclock"
)

// RegisterMetrics registers the store's instrument catalog on r: the
// query-path counters, FM row-cache and pooled-cache counters, device
// and IO-ring counters, migration and endurance accounting, and
// per-table FM residency gauges. Every instrument is func-backed — the
// store's existing deterministic counters are the update path, so a
// metered run executes exactly the same work as an unmetered one and the
// values read at mark time are bit-identical at any parallelism.
// A nil registry registers nothing.
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	// Query path.
	r.NewCounterFunc(metrics.Desc{Name: "sdm_store_lookups", Help: "Row lookups requested (post pooled-cache)."},
		func() uint64 { return s.stats.Lookups })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_store_sm_reads", Help: "Row reads served by an SM device."},
		func() uint64 { return s.stats.SMReads })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_store_fm_direct_reads", Help: "Reads served from FM-direct tables or FM-resident ranges."},
		func() uint64 { return s.stats.FMDirectReads })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_store_range_fm_reads", Help: "Subset of FM-direct reads served by FM-resident row ranges."},
		func() uint64 { return s.stats.RangeFMReads })
	// FM row cache.
	r.NewCounterFunc(metrics.Desc{Name: "sdm_cache_hits", Help: "FM row-cache hits."},
		func() uint64 { return s.rowCache.Stats().Hits })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_cache_misses", Help: "FM row-cache misses."},
		func() uint64 { return s.rowCache.Stats().Misses })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_cache_evictions", Help: "FM row-cache evictions."},
		func() uint64 { return s.rowCache.Stats().Evictions })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_cache_used_bytes", Help: "FM row-cache resident value bytes.", Unit: "bytes"},
		func(simclock.Time) float64 { return float64(s.rowCache.Stats().UsedBytes) })
	// Pooled cache.
	r.NewCounterFunc(metrics.Desc{Name: "sdm_pooled_hits", Help: "Pooled-embedding cache hits across table shards."},
		func() uint64 { return s.PooledStats().Hits })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_pooled_misses", Help: "Pooled-embedding cache misses across table shards."},
		func() uint64 { return s.PooledStats().Misses })
	// SM devices and IO rings.
	r.NewCounterFunc(metrics.Desc{Name: "sdm_device_bus_bytes", Help: "Read bytes transferred over the host link.", Unit: "bytes"},
		func() uint64 { return s.DeviceStats().BusBytes })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_device_media_bytes", Help: "Bytes read at media granularity, including amplification.", Unit: "bytes"},
		func() uint64 { return s.DeviceStats().MediaBytes })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_device_bytes_written", Help: "Lifetime SM bytes written (endurance accounting).", Unit: "bytes"},
		func() uint64 { return s.DeviceStats().BytesWritten })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_ring_completed", Help: "IO-ring completions."},
		func() uint64 { return s.RingStats().Completed })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_ring_peak_inflight", Help: "Peak in-flight IOs across rings (occupancy high-water mark)."},
		func(simclock.Time) float64 { return float64(s.RingStats().PeakInflight) })
	// Tiering and endurance.
	r.NewCounterFunc(metrics.Desc{Name: "sdm_migrated_sm_to_fm_bytes", Help: "Bytes promoted SM->FM by committed migrations.", Unit: "bytes"},
		func() uint64 { return s.stats.MigratedSMToFMBytes })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_migrated_fm_to_sm_bytes", Help: "Bytes demoted FM->SM by committed migrations.", Unit: "bytes"},
		func() uint64 { return s.stats.MigratedFMToSMBytes })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_demote_write_bytes", Help: "SM media bytes written by demotion steps (endurance cost of tiering).", Unit: "bytes"},
		func() uint64 { return s.stats.DemoteWriteBytes })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_wear_life_frac", Help: "Fraction of rated SM life consumed."},
		func(simclock.Time) float64 { return s.Wear().LifeFrac() })
	// Per-table FM residency (tables are the store's shards).
	for i := range s.tables {
		i := i
		r.NewGaugeFunc(metrics.Desc{
			Name: "sdm_table_fm_resident_bytes", Help: "FM-resident bytes of the table (whole-table or range-granular).",
			Unit: "bytes", Labels: []metrics.Label{{Key: "table", Value: strconv.Itoa(i)}},
		}, func(simclock.Time) float64 { return float64(s.FMResidentBytes(i)) })
	}
}
