package core

import (
	"testing"

	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

func adaptiveFixture(t *testing.T, cfg Config) (*Store, *model.Instance, []*embedding.Table, *simclock.Clock) {
	t.Helper()
	mc := model.M1()
	mc.NumUserTables = 4
	mc.NumItemTables = 2
	mc.ItemBatch = 4
	mc.TotalBytes = 1 << 20
	inst, err := model.Build(mc, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var clk simclock.Clock
	s, err := Open(inst, tables, cfg, &clk)
	if err != nil {
		t.Fatal(err)
	}
	return s, inst, tables, &clk
}

func TestReserveSMRejectsTransforms(t *testing.T) {
	mc := model.M1()
	mc.NumUserTables = 2
	mc.NumItemTables = 1
	mc.TotalBytes = 1 << 18
	inst, err := model.Build(mc, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var clk simclock.Clock
	for _, cfg := range []Config{
		{ReserveSM: true, Prune: true},
		{ReserveSM: true, DequantAtLoad: true},
		{ReserveSM: true, UseMmap: true},
	} {
		cfg.Seed = 1
		if _, err := Open(inst, tables, cfg, &clk); err == nil {
			t.Fatalf("ReserveSM with %+v should be rejected", cfg)
		}
	}
}

func TestMigrationRoundTripMatchesOracle(t *testing.T) {
	// Promote an SM table to FM under chunked migration, verify pooled
	// outputs match the original flat table, then demote it and verify the
	// SM path still serves identical data.
	cfg := Config{
		Seed: 5, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 16,
		Placement:  placement.Config{Policy: placement.SMOnlyWithCache, UserTablesOnly: true},
	}
	s, inst, tables, _ := adaptiveFixture(t, cfg)

	const table = 1
	if !s.Swappable(table) {
		t.Fatal("user table should be swappable under ReserveSM")
	}
	if s.TargetOf(table) != placement.SM {
		t.Fatalf("table %d should start SM-resident", table)
	}

	now := s.LoadDone()
	m, err := s.BeginPromote(table, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !m.Finished() {
		n, done, err := m.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatal("chunk issued no bytes")
		}
		if done < now {
			t.Fatalf("chunk completion %v before issue %v", done, now)
		}
		steps++
	}
	if steps < 2 {
		t.Fatalf("migration should be chunked, got %d steps", steps)
	}
	if m.BytesMoved() != inst.Tables[table].SizeBytes() {
		t.Fatalf("moved %d bytes, want %d", m.BytesMoved(), inst.Tables[table].SizeBytes())
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.TargetOf(table) != placement.FM {
		t.Fatal("promotion did not flip the target")
	}
	preStats := s.Stats()
	if preStats.Migrations != 1 || preStats.MigratedSMToFMBytes == 0 {
		t.Fatalf("migration counters not recorded: %+v", preStats)
	}

	// Oracle check: pooled output from the promoted FM copy equals the
	// original table.
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: 7, NumUsers: 200})
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		for i := 0; i < 20; i++ {
			q := gen.Next()
			outs := s.AllocOutputs(q)
			if _, err := s.PoolQuery(now+simclock.Time(i)*1e6, q, outs); err != nil {
				t.Fatal(err)
			}
			for oi, op := range q.Ops {
				if op.Table != table {
					continue
				}
				want := make([]float32, inst.Tables[table].Dim)
				for b, pool := range op.Pools {
					if err := tables[table].Pool(want, pool); err != nil {
						t.Fatal(err)
					}
					for e := range want {
						if want[e] != outs[oi][b][e] {
							t.Fatalf("element %d diverged after migration: %g vs %g", e, outs[oi][b][e], want[e])
						}
					}
				}
			}
		}
	}
	check()

	// Demote back to SM and re-verify through the device path.
	now = now + simclock.Time(1e9)
	d, err := s.BeginDemote(table, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	for !d.Finished() {
		if _, _, err := d.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	now = d.Done() + 1
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.TargetOf(table) != placement.SM {
		t.Fatal("demotion did not flip the target")
	}
	check()
	st := s.Stats()
	if st.Migrations != 2 || st.MigratedFMToSMBytes == 0 {
		t.Fatalf("demotion counters not recorded: %+v", st)
	}
}

func TestMigrationValidation(t *testing.T) {
	cfg := Config{
		Seed: 9, ReserveSM: true, Ring: uring.Config{SGL: true},
		Placement: placement.Config{Policy: placement.SMOnlyWithCache, UserTablesOnly: true},
	}
	s, inst, _, _ := adaptiveFixture(t, cfg)
	itemTable := inst.Config.NumUserTables // first item table: FM, not swappable
	if s.Swappable(itemTable) {
		t.Fatal("item table should not be swappable under UserTablesOnly")
	}
	if _, err := s.BeginPromote(itemTable, 0); err == nil {
		t.Fatal("promoting a non-swappable table should fail")
	}
	if _, err := s.BeginDemote(0, 0); err == nil {
		t.Fatal("demoting an SM-resident table should fail")
	}
	if _, err := s.BeginPromote(99, 0); err == nil {
		t.Fatal("out-of-range table should fail")
	}
	m, err := s.BeginPromote(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err == nil {
		t.Fatal("commit before the final chunk should fail")
	}
	// A second promote of the same still-SM table is legal to begin, but
	// after the first commits, beginning another must fail.
	for !m.Finished() {
		if _, _, err := m.Step(s.LoadDone()); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginPromote(0, 0); err == nil {
		t.Fatal("promoting an FM-resident table should fail")
	}
}

func TestMigrationPreservesOnlineUpdates(t *testing.T) {
	// §A.3 online updates land cache-first as dirty entries; a promotion
	// must carry them into the FM copy (not resurrect the stale SM bytes),
	// and updates applied while FM-resident must survive a later demotion
	// without a stale cache shadow.
	cfg := Config{
		Seed: 15, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 16,
		Placement:  placement.Config{Policy: placement.SMOnlyWithCache, UserTablesOnly: true},
	}
	s, inst, tables, _ := adaptiveFixture(t, cfg)
	const table = 0
	spec := inst.Tables[table]
	// Use another row's stored bytes as the update payload, so the flat
	// oracle for "row 3 now equals row 7" is just pooling row 7.
	donor, err := tables[table].Row(7)
	if err != nil {
		t.Fatal(err)
	}
	now := s.LoadDone()
	if _, err := s.UpdateRow(now, table, 3, donor, UpdateOnline); err != nil {
		t.Fatal(err)
	}

	pool := func(when simclock.Time, row int64) []float32 {
		t.Helper()
		out := [][]float32{make([]float32, spec.Dim)}
		op := workload.TableOp{Table: table, Pools: [][]int64{{row}}}
		if _, err := s.PoolOp(when, op, out); err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	oracle := make([]float32, spec.Dim)
	if err := tables[table].Pool(oracle, []int64{7}); err != nil {
		t.Fatal(err)
	}
	equal := func(got []float32, stage string) {
		t.Helper()
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("%s: element %d = %g, want %g (update lost)", stage, i, got[i], oracle[i])
			}
		}
	}
	equal(pool(now, 3), "dirty cache entry")

	// Promote with the dirty entry outstanding.
	m, err := s.BeginPromote(table, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Finished() {
		if _, _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	now = m.Done() + 1
	equal(pool(now, 3), "after promotion")

	// Update in place while FM-resident, then demote.
	if _, err := s.UpdateRow(now, table, 5, donor, UpdateOffline); err != nil {
		t.Fatal(err)
	}
	d, err := s.BeginDemote(table, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	for !d.Finished() {
		if _, _, err := d.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	now = d.Done() + 1
	equal(pool(now, 3), "after demotion, cache-first row")
	equal(pool(now, 5), "after demotion, FM-updated row")
}

func TestResetRuntimeStatsKeepsTableStatsCoherent(t *testing.T) {
	cfg := Config{
		Seed: 19, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 16,
		Placement:  placement.Config{Policy: placement.SMOnlyWithCache, UserTablesOnly: true},
	}
	s, inst, _, _ := adaptiveFixture(t, cfg)
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: 3, NumUsers: 50})
	if err != nil {
		t.Fatal(err)
	}
	now := s.LoadDone()
	q := gen.Next()
	if _, err := s.PoolQuery(now, q, s.AllocOutputs(q)); err != nil {
		t.Fatal(err)
	}
	s.ResetRuntimeStats()
	q = gen.Next()
	if _, err := s.PoolQuery(now+1e6, q, s.AllocOutputs(q)); err != nil {
		t.Fatal(err)
	}
	var sumLookups, sumSM uint64
	for _, ts := range s.TableStats(nil) {
		sumLookups += ts.Lookups
		sumSM += ts.SMReads
	}
	agg := s.Stats()
	if sumLookups != agg.Lookups || sumSM != agg.SMReads {
		t.Fatalf("per-table counters (%d, %d) incoherent with aggregates (%d, %d) after reset",
			sumLookups, sumSM, agg.Lookups, agg.SMReads)
	}
}

func TestTableStatsPerTableCounters(t *testing.T) {
	cfg := Config{
		Seed: 11, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 16,
		Placement:  placement.Config{Policy: placement.SMOnlyWithCache, UserTablesOnly: true},
	}
	s, inst, _, _ := adaptiveFixture(t, cfg)
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: 13, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	now := s.LoadDone()
	for i := 0; i < 30; i++ {
		q := gen.Next()
		outs := s.AllocOutputs(q)
		if _, err := s.PoolQuery(now+simclock.Time(i)*1e6, q, outs); err != nil {
			t.Fatal(err)
		}
	}
	ts := s.TableStats(nil)
	if len(ts) != len(inst.Tables) {
		t.Fatalf("%d table stats for %d tables", len(ts), len(inst.Tables))
	}
	var sumLookups, sumSM uint64
	for i, st := range ts {
		if st.Table != i {
			t.Fatalf("stat %d reports table %d", i, st.Table)
		}
		sumLookups += st.Lookups
		sumSM += st.SMReads
		if i < inst.Config.NumUserTables {
			if !st.Swappable || st.Lookups == 0 {
				t.Fatalf("user table %d: %+v", i, st)
			}
			if r := st.FMServedRate(); r < 0 || r > 1 {
				t.Fatalf("FM-served rate out of range: %g", r)
			}
		} else if st.Lookups != 0 {
			// Item ops never reach the store in the host path; via
			// PoolQuery they do — but they are FM-direct, so SMReads
			// must be zero.
			if st.SMReads != 0 {
				t.Fatalf("item table %d read SM: %+v", i, st)
			}
		}
	}
	agg := s.Stats()
	if sumLookups != agg.Lookups || sumSM != agg.SMReads {
		t.Fatalf("per-table counters (%d, %d) disagree with aggregates (%d, %d)",
			sumLookups, sumSM, agg.Lookups, agg.SMReads)
	}
}
