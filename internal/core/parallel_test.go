package core

import (
	"fmt"
	"reflect"
	"testing"

	"sdm/internal/blockdev"
	"sdm/internal/cache"
	"sdm/internal/pooledcache"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// engineRun replays a trace through a fresh store at the given parallelism
// and returns every observable: per-query results, final store/cache/
// pooled/device/ring stats and a checksum of all pooled outputs.
type engineRun struct {
	queries []QueryResult
	store   Stats
	cache   cache.Stats
	pooled  pooledcache.Stats
	dev     blockdev.Stats
	ring    uring.Stats
	outSum  float64
}

func runEngine(t *testing.T, parallelism int, cfg Config) engineRun {
	t.Helper()
	in, tables := fixture(t)
	cfg.Parallelism = parallelism
	s, _ := openStore(t, in, tables, cfg)
	qs := trace(t, in, 40, 99)
	now := s.LoadDone()
	var r engineRun
	for _, q := range qs {
		outs := s.AllocOutputs(q)
		res, err := s.PoolQuery(now, q, outs)
		if err != nil {
			t.Fatal(err)
		}
		// Chain issue times so device/ring queue state carries over and
		// any timing divergence compounds into later queries.
		now = res.UserIODone
		r.queries = append(r.queries, res)
		for _, op := range outs {
			for _, pool := range op {
				for _, v := range pool {
					r.outSum += float64(v)
				}
			}
		}
	}
	r.store = s.Stats()
	r.cache = s.CacheStats()
	r.pooled = s.PooledStats()
	r.dev = s.DeviceStats()
	r.ring = s.RingStats()
	return r
}

// TestParallelismBitIdentical is the engine's core guarantee: every
// observable — virtual times, store/cache/pooled/device/ring statistics
// and the pooled outputs themselves — is bit-identical no matter how many
// workers execute the query. Exercises the throttled, pooled-cache and
// SGL paths together; under -race this also drives the concurrent
// functional phase.
func TestParallelismBitIdentical(t *testing.T) {
	cfg := Config{
		Seed:                1,
		Ring:                uring.Config{SGL: true},
		PooledCacheBytes:    1 << 18,
		PooledLenThreshold:  2,
		PerTableOutstanding: 2,
	}
	base := runEngine(t, 1, cfg)
	for _, p := range []int{2, 4, 8} {
		got := runEngine(t, p, cfg)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism=%d diverged from sequential:\n  p=1: %+v\n  p=%d: %+v",
				p, base, p, got)
		}
	}
}

// TestParallelismBitIdenticalBlockReads covers the non-SGL bounce-buffer
// path and pruning mappers.
func TestParallelismBitIdenticalBlockReads(t *testing.T) {
	cfg := Config{Seed: 2, Prune: true, CacheBytes: 1 << 14}
	base := runEngine(t, 1, cfg)
	got := runEngine(t, 4, cfg)
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("block-read path diverged:\n  p=1: %+v\n  p=4: %+v", base, got)
	}
}

// TestParallelOracle checks output correctness of the concurrent
// functional phase against flat in-memory pooling.
func TestParallelOracle(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{
		Seed: 1, Ring: uring.Config{SGL: true}, Parallelism: 8,
	})
	checkAgainstOracle(t, s, in, tables, trace(t, in, 20, 14))
}

// TestPoolOpsDuplicateTables verifies that a batch with two ops on the
// same table (which share a cache shard) still executes correctly and
// deterministically — the engine detects the collision and serializes.
func TestPoolOpsDuplicateTables(t *testing.T) {
	run := func(p int) ([]OpResult, Stats) {
		in, tables := fixture(t)
		s, _ := openStore(t, in, tables, Config{Seed: 3, Parallelism: p})
		ops := []workload.TableOp{
			{Table: 0, Pools: [][]int64{{1, 2, 3}}},
			{Table: 1, Pools: [][]int64{{4, 5}}},
			{Table: 0, Pools: [][]int64{{1, 2, 3}, {6}}},
		}
		outs := make([][][]float32, len(ops))
		for i, op := range ops {
			dim := in.Tables[op.Table].Dim
			outs[i] = make([][]float32, len(op.Pools))
			for b := range op.Pools {
				outs[i][b] = make([]float32, dim)
			}
		}
		rs, err := s.PoolOps(s.LoadDone(), ops, outs)
		if err != nil {
			t.Fatal(err)
		}
		return rs, s.Stats()
	}
	rs1, st1 := run(1)
	rs8, st8 := run(8)
	if !reflect.DeepEqual(rs1, rs8) || !reflect.DeepEqual(st1, st8) {
		t.Fatalf("duplicate-table batch diverged: %+v vs %+v", rs1, rs8)
	}
}

// TestPoolOpsValidation mirrors PoolOp's legacy validation errors.
func TestPoolOpsValidation(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, Parallelism: 4})
	_ = in
	if _, err := s.PoolOps(0, []workload.TableOp{{Table: 99}}, [][][]float32{nil}); err == nil {
		t.Fatal("bad table should fail")
	}
	op := workload.TableOp{Table: 0, Pools: [][]int64{{0}}}
	if _, err := s.PoolOps(0, []workload.TableOp{op}, [][][]float32{{make([]float32, 1)}}); err == nil {
		t.Fatal("wrong output dim should fail")
	}
	if _, err := s.PoolOps(0, []workload.TableOp{op}, nil); err == nil {
		t.Fatal("missing outputs should fail")
	}
}

// TestSetParallelism checks the knob's clamping behaviour.
func TestSetParallelism(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1})
	if s.Parallelism() != 1 {
		t.Fatalf("default parallelism %d, want 1", s.Parallelism())
	}
	s.SetParallelism(6)
	if s.Parallelism() != 6 {
		t.Fatalf("parallelism %d, want 6", s.Parallelism())
	}
	s.SetParallelism(0)
	if s.Parallelism() < 1 {
		t.Fatal("auto parallelism must be >= 1")
	}
}

// TestConcurrentStores drives independent stores from concurrent
// goroutines, each with an internally parallel engine — the fleet-runner
// shape — to give -race a cross-store workout.
func TestConcurrentStores(t *testing.T) {
	in, tables := fixture(t)
	const hosts = 3
	errc := make(chan error, hosts)
	for h := 0; h < hosts; h++ {
		go func(h int) {
			errc <- func() error {
				var clk simclock.Clock
				s, err := Open(in, tables, Config{Seed: uint64(h + 1), Parallelism: 4, Ring: uring.Config{SGL: true}}, &clk)
				if err != nil {
					return err
				}
				g, err := workload.NewGenerator(in, workload.Config{Seed: uint64(h) + 7, NumUsers: 50})
				if err != nil {
					return err
				}
				now := s.LoadDone()
				for i := 0; i < 10; i++ {
					q := g.Next()
					outs := s.AllocOutputs(q)
					if _, err := s.PoolQuery(now, q, outs); err != nil {
						return fmt.Errorf("host %d query %d: %w", h, i, err)
					}
				}
				return nil
			}()
		}(h)
	}
	for h := 0; h < hosts; h++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
