// Package core implements the paper's primary contribution: the Software
// Defined Memory (SDM) embedding store (§4). A Store extends a DLRM
// model's embedding capacity beyond DRAM onto simulated Storage Class
// Memory devices, gluing together the fast-IO path (io_uring + SGL
// sub-block reads, §4.1), the unified FM row cache (§4.3), the pooled
// embedding cache (§4.4), the capacity trade-offs (de-pruning §4.5 and
// de-quantization §A.5 at load time) and the placement policies (§4.6)
// behind a single pooled-lookup API with virtual-time accounting.
package core

import (
	"fmt"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/placement"
	"sdm/internal/pooledcache"
	"sdm/internal/uring"
)

// CacheKind selects the FM row-cache organization (§4.3, Fig. 6).
type CacheKind int

// Cache organizations evaluated in Fig. 6.
const (
	// CacheDual routes dim ≤ split to the memory-optimized cache and the
	// rest to the CPU-optimized cache — the paper's production choice.
	CacheDual CacheKind = iota + 1
	// CacheMemOptimized uses only the compact set-associative cache.
	CacheMemOptimized
	// CacheCPUOptimized uses only the map+LRU cache.
	CacheCPUOptimized
)

// String returns the cache-kind name.
func (k CacheKind) String() string {
	switch k {
	case CacheDual:
		return "dual"
	case CacheMemOptimized:
		return "mem-optimized"
	case CacheCPUOptimized:
		return "cpu-optimized"
	default:
		return fmt.Sprintf("CacheKind(%d)", int(k))
	}
}

// Config assembles every tuning knob the paper exposes ("Tuning API"
// paragraphs of §4.1–§4.6) plus the ablation switches used by the
// experiment harness.
type Config struct {
	// SMTech is the slow-memory technology backing the store.
	SMTech blockdev.Technology
	// NumDevices is how many SM devices the host attaches (Table 7 hosts
	// carry 2; the M3 sizing study uses 9). Rows stripe across devices.
	NumDevices int
	// DeviceCapacity is the per-device capacity in bytes; 0 auto-sizes
	// to fit the SM-resident tables with 25% headroom.
	DeviceCapacity int64

	// Ring carries the fast-IO knobs: SGL sub-block reads (§4.1.1), the
	// global outstanding-IO cap and IRQ/polling completion (§A.1).
	Ring uring.Config
	// PerTableOutstanding caps in-flight IOs per table ("Total number of
	// outstanding IOs per table", §4.1 Tuning API). 0 = unlimited.
	PerTableOutstanding int
	// UseMmap replaces DIRECT_IO+cache with the mmap path the paper
	// rejected (§4.1) — ablation only.
	UseMmap bool

	// CacheBytes is the total FM budget for the row cache. Mapper
	// tensors of pruned SM tables are charged against this budget
	// (§4.5: "The space taken by mapper tensors [is] memory taken away
	// from the SM cache").
	CacheBytes int64
	// CacheKind selects the Fig. 6 organization.
	CacheKind CacheKind
	// CacheSplitBytes is the dual-cache routing threshold (0 → 255).
	CacheSplitBytes int
	// CachePartitions shards the cache ("number of cache partitions").
	CachePartitions int

	// PooledCacheBytes enables the pooled embedding cache (§4.4) with
	// the given FM budget; 0 disables it.
	PooledCacheBytes int64
	// PooledLenThreshold is Table 4's LenThreshold knob.
	PooledLenThreshold int

	// Parallelism is the worker count of the sharded query engine: a
	// query's TableOps fan out across this many workers (the row cache and
	// pooled cache are sharded by table, so independent operators take no
	// shared locks), while SM timing is replayed deterministically in
	// operator order. Virtual-time accounting and store statistics are
	// bit-identical at every setting; only wall-clock time changes.
	// 0 or 1 executes operators on the calling goroutine.
	Parallelism int

	// Placement selects the §4.6 policy, DRAM budget and deny-list.
	Placement placement.Config

	// ReserveSM provisions every SM-eligible table for runtime placement
	// swaps (the adapt subsystem): each candidate gets an SM stripe
	// (written only if it starts SM-resident) and an FM cache shard, so a
	// table can later migrate FM↔SM without reallocating device space or
	// rebalancing cache budgets mid-run. Incompatible with the load-time
	// transforms (Prune/Deprune/DequantAtLoad) — they would make the FM
	// and SM row formats diverge — and with UseMmap.
	ReserveSM bool

	// MigrationRangeBytes is the row-range width, in stored bytes, at
	// which ReserveSM tables are provisioned for partial-table migration:
	// residency tracking, per-range lookup counters and range-scoped
	// migrations all operate on [lo, hi) row windows of this size, so an
	// adaptive controller can promote a table's hot rows without paying
	// for its cold ones. 0 selects 256 KiB.
	MigrationRangeBytes int64

	// Prune stores SM tables pruned, with mapper tensors in FM (§4.5).
	Prune bool
	// PruneEps is the |value| threshold under which rows are pruned.
	PruneEps float32
	// Deprune re-materializes pruned tables as dense at load time
	// (Algorithm 2), freeing the mapper FM for cache at the cost of a
	// larger SM footprint and extra cold accesses.
	Deprune bool
	// DequantAtLoad expands SM tables to FP32 at load time (§A.5).
	DequantAtLoad bool

	Seed uint64
}

// Defaulted returns the config with zero fields replaced by defaults.
func (c Config) Defaulted() Config {
	if c.SMTech == 0 {
		c.SMTech = blockdev.NandFlash
	}
	if c.NumDevices <= 0 {
		c.NumDevices = 2
	}
	if c.CacheKind == 0 {
		c.CacheKind = CacheDual
	}
	if c.CacheSplitBytes <= 0 {
		c.CacheSplitBytes = 255
	}
	if c.CachePartitions <= 0 {
		c.CachePartitions = 1
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 8 << 20
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.PooledLenThreshold <= 0 {
		c.PooledLenThreshold = 4
	}
	if c.Prune && c.PruneEps <= 0 {
		c.PruneEps = 1e-6
	}
	if c.MigrationRangeBytes <= 0 {
		c.MigrationRangeBytes = 256 << 10
	}
	if c.Placement.Policy == 0 {
		c.Placement.Policy = placement.SMOnlyWithCache
		c.Placement.UserTablesOnly = true
	}
	return c
}

// PooledConfig derives the pooled-cache configuration.
func (c Config) pooledConfig() pooledcache.Config {
	return pooledcache.Config{
		CapacityBytes: c.PooledCacheBytes,
		LenThreshold:  c.PooledLenThreshold,
	}
}

// CPU cost model for the functional layer, used to convert real work into
// virtual host CPU time for the serving simulator. The constants are
// commodity-server magnitudes; the paper's comparative results depend only
// on their ratios (e.g. cache hit ≪ SM IO, block read pays an extra copy).
const (
	costCacheGetBase = 60 * time.Nanosecond // one row-cache probe (×variant cost)
	costCachePut     = 80 * time.Nanosecond // one row-cache insert
	costMapperLookup = 15 * time.Nanosecond // pruned-index mapper probe
	costHashPerIndex = 8 * time.Nanosecond  // pooled-cache order-invariant hash
)

// Per-byte costs in nanoseconds (sub-nanosecond, so expressed as float).
const (
	costDequantPerByteNs = 0.25 // dequantize+accumulate, per row byte
	costMemcpyPerByteNs  = 0.03 // host memcpy, per byte
	costPooledCopyByteNs = 0.02 // pooled-vector copy on hit
	costFMReadPerByteNs  = 0.01 // direct-FM row read, per byte
)

func perByteCost(nsPerByte float64, n int) time.Duration {
	return time.Duration(nsPerByte * float64(n))
}
