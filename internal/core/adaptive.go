// Runtime adaptive-tiering support: per-table telemetry export and the
// FM↔SM migration primitives the adapt subsystem drives. A store opened
// with Config.ReserveSM provisions every SM-eligible table for swaps
// (reserved stripe + cache shard); migrations then move a table's rows
// through the same rings and devices foreground queries use, so migration
// IO is accounted in virtual time and visibly competes with serving
// traffic. Pacing (the bandwidth cap) is the caller's job: the engine
// exposes chunked Steps, the adapt migrator decides when to issue them.

package core

import (
	"fmt"

	"sdm/internal/blockdev"
	"sdm/internal/cache"
	"sdm/internal/embedding"
	"sdm/internal/placement"
	"sdm/internal/simclock"
)

// TableStat is one table's live runtime view: current placement plus the
// counters accumulated since load. The query engine folds counters in
// operator order, so every field is parallelism-invariant.
type TableStat struct {
	Table        int
	Target       placement.Target
	Swappable    bool
	CacheEnabled bool
	// StoredBytes is the table's stored footprint (the bytes a whole-table
	// migration moves); RowBytes the stored row size.
	StoredBytes int64
	RowBytes    int
	// RangeRows is the row-range width of a range-provisioned table (0
	// otherwise) and FMRangeBytes the stored bytes currently FM-resident
	// through promoted ranges.
	RangeRows    int64
	FMRangeBytes int64

	Lookups       uint64
	SMReads       uint64
	FMDirectReads uint64
	RangeFMReads  uint64
	CacheHits     uint64
	CacheMisses   uint64
	PooledHits    uint64
	PooledMisses  uint64

	// DemoteWriteBytes counts the SM media bytes demotions of this table
	// have written (as chunks issue, committed or not) — the per-table
	// endurance cost the wear-aware placement term consumes. It survives
	// ResetRuntimeStats, like every endurance counter.
	DemoteWriteBytes uint64
}

// FMServedRate returns the fraction of the table's row lookups served
// from fast memory (cache hits + direct FM reads) rather than SM.
func (t TableStat) FMServedRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return 1 - float64(t.SMReads)/float64(t.Lookups)
}

// TableStats appends one TableStat per table (in table order) to dst and
// returns it — the telemetry feed of the adapt subsystem. Counters are
// cumulative; samplers subtract consecutive snapshots.
func (s *Store) TableStats(dst []TableStat) []TableStat {
	dst = dst[:0]
	for i, st := range s.tables {
		ts := TableStat{
			Table:            i,
			Target:           st.target,
			Swappable:        st.swappable,
			CacheEnabled:     st.cacheEnabled,
			StoredBytes:      st.spec.SizeBytes(),
			RowBytes:         st.spec.RowBytes(),
			RangeRows:        st.rangeRows,
			FMRangeBytes:     st.fmRangeBytes,
			Lookups:          st.runtime.Lookups,
			SMReads:          st.runtime.SMReads,
			FMDirectReads:    st.runtime.FMDirectReads,
			RangeFMReads:     st.runtime.RangeFMReads,
			PooledHits:       st.runtime.PooledHits,
			PooledMisses:     st.runtime.PooledMisses,
			DemoteWriteBytes: st.runtime.DemoteWriteBytes,
		}
		if st.rowBytes > 0 {
			ts.StoredBytes = st.storedSpec.SizeBytes()
			ts.RowBytes = st.rowBytes
		}
		if st.cache != nil {
			cs := st.cache.Stats()
			ts.CacheHits, ts.CacheMisses = cs.Hits, cs.Misses
		}
		dst = append(dst, ts)
	}
	return dst
}

// Migration is one in-progress FM↔SM move — a whole table
// (BeginPromote/BeginDemote) or a range-aligned row window of one
// (BeginPromoteRange/BeginDemoteRange). The caller issues chunks with Step
// at virtual times of its choosing (that is where a bandwidth cap lives),
// then finalizes the placement swap with Commit once the last chunk's IO
// has completed on the virtual timeline; Abort renounces a migration whose
// Step failed mid-flight, so a later Commit cannot install a half-built
// copy. Migrations are not concurrency-safe and must be driven from the
// same discrete-event thread as queries.
type Migration struct {
	s  *Store
	st *tableState

	table     int
	promote   bool // SM→FM reads; false = FM→SM writes
	ranged    bool // row-window migration over range residency
	chunkRows int64

	// [begin, end) is the row window being moved (the whole table when
	// ranged is false); next is the first row of the next chunk.
	begin, end, next int64

	data    []byte // promote: FM destination for rows [begin,end)
	src     []byte // whole-table demote: FM source bytes
	staging []byte // per-device gather/scatter buffer

	issuedBytes int64
	done        simclock.Time
	finished    bool
	committed   bool
	aborted     bool
}

// migrationState validates a swap request and returns the table state.
func (s *Store) migrationState(table int, want placement.Target) (*tableState, error) {
	if table < 0 || table >= len(s.tables) {
		return nil, fmt.Errorf("core: migrate table %d of %d", table, len(s.tables))
	}
	st := s.tables[table]
	if !st.swappable {
		return nil, fmt.Errorf("core: table %d is not swappable (store not opened with ReserveSM, or table SM-ineligible)", table)
	}
	if st.target != want {
		return nil, fmt.Errorf("core: table %d is %s-resident, want %s", table, st.target, want)
	}
	return st, nil
}

// newMigration sizes the chunking for one migration over the whole table;
// range Begins narrow [begin, end) afterwards.
func newMigration(s *Store, st *tableState, table int, promote bool, chunkBytes int) *Migration {
	rb := int64(st.rowBytes)
	rows := int64(chunkBytes) / rb
	if rows < 1 {
		rows = 1
	}
	return &Migration{
		s: s, st: st, table: table, promote: promote,
		chunkRows: rows,
		end:       st.rows,
		staging:   make([]byte, rows*rb),
	}
}

// BeginPromote starts migrating an SM-resident table into FM: chunks read
// the table's stripes back through the rings (stealing device channels
// and bus time from foreground queries), and Commit installs the rebuilt
// FM table. chunkBytes is the payload of one Step (<= 0 selects 256 KiB).
func (s *Store) BeginPromote(table int, chunkBytes int) (*Migration, error) {
	st, err := s.migrationState(table, placement.SM)
	if err != nil {
		return nil, err
	}
	if st.fmRangeBytes > 0 {
		// A whole-table promotion would rebuild the FM copy from the SM
		// stripe, which is stale for rows updated while range-resident;
		// the ranges must be demoted (rewriting SM) first.
		return nil, fmt.Errorf("core: table %d has FM-resident row ranges; demote them before a whole-table promotion", table)
	}
	if chunkBytes <= 0 {
		chunkBytes = 256 << 10
	}
	if st.migIn != nil {
		return nil, fmt.Errorf("core: table %d already has a promotion in flight", table)
	}
	m := newMigration(s, st, table, true, chunkBytes)
	m.data = make([]byte, st.storedSpec.SizeBytes())
	st.migIn = m
	return m, nil
}

// BeginDemote starts migrating an FM-resident table out to its reserved
// SM stripe: chunks write through the rings (program latency + endurance
// wear), and Commit drops the FM copy. The table's cache shard is kept —
// rows are immutable, so any entries from an earlier SM stint stay valid.
func (s *Store) BeginDemote(table int, chunkBytes int) (*Migration, error) {
	st, err := s.migrationState(table, placement.FM)
	if err != nil {
		return nil, err
	}
	if st.fm == nil {
		return nil, fmt.Errorf("core: table %d has no FM copy to demote", table)
	}
	if chunkBytes <= 0 {
		chunkBytes = 256 << 10
	}
	if st.migOut != nil {
		return nil, fmt.Errorf("core: table %d already has a demotion in flight", table)
	}
	m := newMigration(s, st, table, false, chunkBytes)
	m.src = st.fm.Bytes()
	st.migOut = m
	return m, nil
}

// Table returns the table being migrated.
func (m *Migration) Table() int { return m.table }

// Promote reports the direction (true = SM→FM).
func (m *Migration) Promote() bool { return m.promote }

// Finished reports whether every chunk has been issued.
func (m *Migration) Finished() bool { return m.finished }

// Done returns the completion time of the slowest chunk issued so far.
func (m *Migration) Done() simclock.Time { return m.done }

// BytesMoved returns the migration bytes issued so far.
func (m *Migration) BytesMoved() int64 { return m.issuedBytes }

// ceilRows returns the smallest j >= 0 with j*n >= a.
func ceilRows(a, n int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + n - 1) / n
}

// Step issues the next chunk at virtual time now: one ring submission per
// device covering the chunk's share of the stripe. It returns the bytes
// issued and the chunk's IO completion time. After the final chunk,
// Finished reports true; Commit may then be called once the caller's
// clock passes Done.
func (m *Migration) Step(now simclock.Time) (int, simclock.Time, error) {
	if m.aborted {
		return 0, m.done, fmt.Errorf("core: step of aborted migration (table %d)", m.table)
	}
	if m.finished {
		return 0, m.done, nil
	}
	s, st := m.s, m.st
	n := int64(s.cfg.NumDevices)
	rb := int64(st.rowBytes)
	r0 := m.next
	r1 := r0 + m.chunkRows
	if r1 > m.end {
		r1 = m.end
	}
	chunkDone := now
	bytes := 0
	for d := int64(0); d < n; d++ {
		// Stored indices j on device d whose global row j*n+d falls in
		// [r0, r1).
		lo := ceilRows(r0-d, n)
		hi := ceilRows(r1-d, n)
		if hi <= lo {
			continue
		}
		span := (hi - lo) * rb
		buf := m.staging[:span]
		off := st.smBase[d] + lo*rb
		if m.promote {
			done, err := s.rings[d].SubmitSync(now, buf, off, false)
			if err != nil {
				return bytes, chunkDone, fmt.Errorf("core: promote table %d: %w", m.table, err)
			}
			for j := lo; j < hi; j++ {
				g := (j*n + d - m.begin) * rb
				copy(m.data[g:g+rb], buf[(j-lo)*rb:(j-lo+1)*rb])
			}
			if done > chunkDone {
				chunkDone = done
			}
		} else {
			for j := lo; j < hi; j++ {
				copy(buf[(j-lo)*rb:(j-lo+1)*rb], m.srcRow(j*n+d))
			}
			done, err := s.rings[d].SubmitSync(now, buf, off, true)
			if err != nil {
				return bytes, chunkDone, fmt.Errorf("core: demote table %d: %w", m.table, err)
			}
			st.runtime.DemoteWriteBytes += uint64(span)
			s.stats.DemoteWriteBytes += uint64(span)
			if done > chunkDone {
				chunkDone = done
			}
		}
		bytes += int(span)
	}
	m.issuedBytes += int64(bytes)
	if chunkDone > m.done {
		m.done = chunkDone
	}
	m.next = r1
	if r1 >= m.end {
		m.finished = true
	}
	return bytes, m.done, nil
}

// srcRow returns the FM source bytes of global row during a demotion:
// the whole-table FM copy, or the row's FM-resident range.
func (m *Migration) srcRow(row int64) []byte {
	rb := int64(m.st.rowBytes)
	if !m.ranged {
		return m.src[row*rb : (row+1)*rb]
	}
	return m.st.fmRangeRow(row)
}

// Commit finalizes the placement swap: promotions install the FM table
// rebuilt from the bytes read back from SM, demotions drop the FM copy.
// It must only be called after every chunk has been issued (Finished) and
// the caller's virtual clock has passed Done — data would otherwise still
// be "in flight" on the timeline.
func (m *Migration) Commit() error {
	if m.aborted {
		return fmt.Errorf("core: commit of aborted migration (table %d)", m.table)
	}
	if !m.finished {
		return fmt.Errorf("core: commit of unfinished migration (table %d, %d/%d rows)", m.table, m.next-m.begin, m.end-m.begin)
	}
	if m.committed {
		return nil
	}
	st := m.st
	if m.promote {
		var tbl *embedding.Table
		if !m.ranged {
			// Validate the image before foldDirty touches the cache, so a
			// failed commit has no side effects (the drained dirty flags
			// would otherwise be lost with the discarded image). FromBytes
			// wraps m.data without copying, so the fold below lands in tbl.
			var err error
			tbl, err = embedding.FromBytes(st.storedSpec, m.data)
			if err != nil {
				return fmt.Errorf("core: promote table %d: %w", m.table, err)
			}
		}
		if st.cache != nil {
			// Online updates live cache-first as dirty entries (§A.3), so
			// for those rows the cache — not SM — holds the freshest copy.
			// Fold the in-window ones into the FM image; clearing their
			// dirty flags is correct because the FM copy becomes those
			// rows' source of truth, and a later demotion rewrites their
			// SM stripe share wholesale. Dirty entries outside the window
			// keep serving cache-first, so they are re-marked dirty.
			m.foldDirty()
		}
		if m.ranged {
			m.installRanges()
		} else {
			st.fm = tbl
			st.target = placement.FM
		}
		m.s.stats.MigratedSMToFMBytes += uint64(m.issuedBytes)
	} else {
		if m.ranged {
			m.releaseRanges()
		} else {
			st.fm = nil
			st.target = placement.SM
		}
		m.s.stats.MigratedFMToSMBytes += uint64(m.issuedBytes)
	}
	m.s.stats.Migrations++
	if m.ranged {
		m.s.stats.RangeMigrations++
	}
	m.committed = true
	m.untrack()
	return nil
}

// untrack releases the table's in-flight slot for this migration.
func (m *Migration) untrack() {
	if m.st.migIn == m {
		m.st.migIn = nil
	}
	if m.st.migOut == m {
		m.st.migOut = nil
	}
}

// foldDirty folds dirty cache entries inside the migration window into the
// promoted FM image and re-marks the out-of-window ones dirty (a
// whole-table window keeps the original drain-everything behavior).
func (m *Migration) foldDirty() {
	st := m.st
	rb := int64(st.rowBytes)
	type dirtyRow struct {
		k cache.Key
		v []byte
	}
	var keep []dirtyRow
	st.cache.FlushDirty(func(k cache.Key, v []byte) {
		if k.Row >= m.begin && k.Row < m.end {
			g := (k.Row - m.begin) * rb
			copy(m.data[g:g+rb], v)
			return
		}
		keep = append(keep, dirtyRow{k: k, v: append([]byte(nil), v...)})
	})
	for _, d := range keep {
		st.cache.PutDirty(d.k, d.v)
	}
}

// installRanges copies the promoted window into per-range FM buffers —
// one allocation per range, not sub-slices of the staging image, so a
// later demotion of one range actually frees its bytes instead of pinning
// the whole coalesced window through a sibling.
func (m *Migration) installRanges() {
	st := m.st
	rb := int64(st.rowBytes)
	if st.fmRange == nil {
		st.fmRange = make([][]byte, st.numRanges())
	}
	for r := int(m.begin / st.rangeRows); ; r++ {
		lo, hi := st.rangeBounds(r)
		if lo >= m.end {
			break
		}
		buf := make([]byte, (hi-lo)*rb)
		copy(buf, m.data[(lo-m.begin)*rb:(hi-m.begin)*rb])
		st.fmRange[r] = buf
		st.fmRangeBytes += (hi - lo) * rb
	}
	m.data = nil
}

// releaseRanges drops the FM buffers of the demoted window.
func (m *Migration) releaseRanges() {
	st := m.st
	rb := int64(st.rowBytes)
	for r := int(m.begin / st.rangeRows); ; r++ {
		lo, hi := st.rangeBounds(r)
		if lo >= m.end {
			break
		}
		st.fmRange[r] = nil
		st.fmRangeBytes -= (hi - lo) * rb
	}
}

// Aborted reports whether the migration was abandoned.
func (m *Migration) Aborted() bool { return m.aborted }

// Abort renounces an in-flight migration after a Step error (or a caller
// change of mind): Step and Commit fail afterwards, so a half-built FM
// image can never be installed. Nothing physical needs rolling back — an
// aborted promotion's staging copy is simply dropped, and an aborted
// demotion's partially rewritten SM window is unreachable (the rows remain
// FM-resident) until a later demotion rewrites it from its first row.
// Safe to call more than once; a no-op after Commit.
func (m *Migration) Abort() {
	if m.committed {
		return
	}
	m.aborted = true
	m.untrack()
}

// WearInfo summarizes the store's SM endurance state: the §3 DWPD rating
// applied to the attached devices, their lifetime media writes, and the
// total writes the rating allows over blockdev.RatedLifeYears. It is the
// input the wear-aware placement term and fleet wear observability share.
type WearInfo struct {
	Tech blockdev.Technology
	// DWPD is the technology's drive-writes-per-day rating.
	DWPD float64
	// CapacityBytes is the total SM capacity across devices.
	CapacityBytes int64
	// BytesWritten is the lifetime media bytes written across devices
	// (model load included — load writes wear the flash too).
	BytesWritten uint64
	// RatedLifeBytes is the total writes the DWPD rating allows over the
	// rated life (0 for unrated technologies).
	RatedLifeBytes int64
}

// LifeFrac returns the remaining rated-life fraction in [0, 1] (1 when
// the technology carries no rating — nothing to conserve).
func (w WearInfo) LifeFrac() float64 {
	if w.RatedLifeBytes <= 0 {
		return 1
	}
	rem := 1 - float64(w.BytesWritten)/float64(w.RatedLifeBytes)
	if rem < 0 {
		return 0
	}
	return rem
}

// DailyWriteBudgetBytes returns the bytes/day of SM writes the endurance
// model currently allows: the DWPD rating scaled by the remaining rated
// life, so a worn device earns a proportionally smaller budget.
func (w WearInfo) DailyWriteBudgetBytes() float64 {
	if w.DWPD <= 0 || w.CapacityBytes <= 0 {
		return 0
	}
	return w.DWPD * float64(w.CapacityBytes) * w.LifeFrac()
}

// DWPDUtil returns the utilization of the endurance rating implied by a
// sustained write rate of bytesPerDay (1.0 = writing exactly at the
// rated DWPD).
func (w WearInfo) DWPDUtil(bytesPerDay float64) float64 {
	if w.DWPD <= 0 || w.CapacityBytes <= 0 {
		return 0
	}
	return bytesPerDay / (w.DWPD * float64(w.CapacityBytes))
}

// Wear returns the store's SM endurance state, aggregated across its
// devices.
func (s *Store) Wear() WearInfo {
	spec := blockdev.Spec(s.cfg.SMTech)
	w := WearInfo{Tech: s.cfg.SMTech, DWPD: spec.EnduranceDWPD}
	for _, d := range s.devices {
		w.CapacityBytes += d.Capacity()
		w.BytesWritten += d.Stats().BytesWritten
		w.RatedLifeBytes += spec.RatedLifeBytes(d.Capacity())
	}
	return w
}

// Swappable reports whether table can be migrated at runtime.
func (s *Store) Swappable(table int) bool {
	return table >= 0 && table < len(s.tables) && s.tables[table].swappable
}

// TargetOf returns table's current placement target.
func (s *Store) TargetOf(table int) placement.Target {
	return s.tables[table].target
}
