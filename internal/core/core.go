package core
