package core

import (
	"testing"

	"sdm/internal/uring"
	"sdm/internal/workload"
)

// TestInferenceEvalModeThroughStore exercises Table 2's second usecase:
// InferenceEval batches the user side too (B_U == B_I), which the paper
// notes is more sensitive to placement. The store must produce
// oracle-correct outputs for multi-pool user ops as well.
func TestInferenceEvalModeThroughStore(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, Ring: uring.Config{SGL: true}})
	g, err := workload.NewGenerator(in, workload.Config{Seed: 31, NumUsers: 40, EvalMode: true})
	if err != nil {
		t.Fatal(err)
	}
	qs := g.GenerateTrace(8)
	// Eval queries must batch the user side.
	for _, q := range qs {
		if len(q.Ops[0].Pools) != in.Config.ItemBatch {
			t.Fatalf("eval user op has %d pools, want %d", len(q.Ops[0].Pools), in.Config.ItemBatch)
		}
	}
	checkAgainstOracle(t, s, in, tables, qs)
}

// TestStoreDeterministicReplay verifies that two stores built from the same
// seeds produce identical virtual-time accounting for the same trace — the
// property every experiment's reproducibility rests on.
func TestStoreDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		in, tables := fixture(t)
		s, _ := openStore(t, in, tables, Config{Seed: 1, Ring: uring.Config{SGL: true}})
		g, err := workload.NewGenerator(in, workload.Config{Seed: 17, NumUsers: 30})
		if err != nil {
			t.Fatal(err)
		}
		now := s.LoadDone()
		var lastIO uint64
		for i := 0; i < 15; i++ {
			q := g.Next()
			outs := s.AllocOutputs(q)
			res, err := s.PoolQuery(now, q, outs)
			if err != nil {
				t.Fatal(err)
			}
			lastIO = uint64(res.UserIODone)
		}
		return lastIO, s.Stats().SMReads
	}
	io1, reads1 := run()
	io2, reads2 := run()
	if io1 != io2 || reads1 != reads2 {
		t.Fatalf("replay diverged: io %d vs %d, reads %d vs %d", io1, io2, reads1, reads2)
	}
}
