package core

import (
	"fmt"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/cache"
	"sdm/internal/placement"
	"sdm/internal/simclock"
)

// UpdateMode selects how new weights stream in while the host serves
// traffic (§A.3).
type UpdateMode int

// Update modes from §A.3.
const (
	// UpdateOffline writes straight to SM with the host out of rotation:
	// no read/write mixing (which "would considerably impact performance
	// of Nand flash"), but the host serves nothing meanwhile.
	UpdateOffline UpdateMode = iota + 1
	// UpdateOnline updates the FM cache first (dirty entries) and lets
	// write-back drain to SM, keeping the host serving.
	UpdateOnline
)

// UpdateRow applies one incremental row update at virtual time now.
// The row value must already be encoded in the table's stored QType.
func (s *Store) UpdateRow(now simclock.Time, table int, row int64, value []byte, mode UpdateMode) (simclock.Time, error) {
	if table < 0 || table >= len(s.tables) {
		return now, fmt.Errorf("core: update table %d out of range", table)
	}
	st := s.tables[table]
	if st.target == placement.FM {
		// FM tables update in place.
		dst, err := st.fm.Row(row)
		if err != nil {
			return now, err
		}
		if len(value) != len(dst) {
			return now, fmt.Errorf("core: update row size %d, want %d", len(value), len(dst))
		}
		copy(dst, value)
		if st.cache != nil {
			// A swappable table keeps its (possibly still warm) SM-stint
			// cache shard coherent with the FM copy, so a later demotion
			// cannot resurface a stale cached row.
			st.cache.Put(cache.Key{Table: int32(st.spec.ID), Row: row}, value)
		}
		return s.demoteWriteThrough(now, st, row, value)
	}
	if st.mapper != nil {
		m := st.mapper[row]
		if m < 0 {
			return now, fmt.Errorf("core: cannot update pruned row %d of table %d", row, table)
		}
		row = int64(m)
	}
	if len(value) != st.rowBytes {
		return now, fmt.Errorf("core: update row size %d, want %d", len(value), st.rowBytes)
	}
	key := cache.Key{Table: int32(st.spec.ID), Row: row}
	if b := st.fmRangeRow(row); b != nil {
		// The row's range is FM-resident: the FM copy is its source of
		// truth (a later range demotion rewrites SM from it), so update in
		// place like an FM-direct table — and keep any cached copy
		// coherent so the SM path cannot resurface a stale row after the
		// demotion.
		copy(b, value)
		if st.cache != nil {
			st.cache.Put(key, value)
		}
		return s.demoteWriteThrough(now, st, row, value)
	}
	if mode == UpdateOnline && st.cache != nil {
		// Cache-first: readers see the new value immediately; SM is
		// refreshed by FlushUpdates. Tables without a cache shard
		// (PerTableCache deny-list) fall through to the direct SM write.
		st.cache.PutDirty(key, value)
		return now, nil
	}
	dev, off := s.smLocation(st, row)
	done, err := s.devices[dev].Write(now, value, off)
	if err != nil {
		return now, err
	}
	// Invalidate (overwrite) any stale cached copy.
	if st.cache != nil {
		st.cache.Put(key, value)
	}
	if p := st.migIn; p != nil && row >= p.begin && row < p.next {
		// An in-flight promotion already read this row's old bytes off
		// SM; patch its staging image so Commit cannot install the stale
		// value behind the (non-dirty) cache entry.
		rb := int64(st.rowBytes)
		copy(p.data[(row-p.begin)*rb:(row-p.begin+1)*rb], value)
	}
	return done, nil
}

// demoteWriteThrough keeps an in-flight demotion coherent with an update
// to an FM-resident row: chunks issued before the update carried the old
// bytes to SM, and Commit would drop the fresh FM copy behind a merely
// evictable cache entry — so the row is re-written to SM at now. Chunks
// not yet issued read the (live) FM source and need nothing.
func (s *Store) demoteWriteThrough(now simclock.Time, st *tableState, row int64, value []byte) (simclock.Time, error) {
	d := st.migOut
	if d == nil || row < d.begin || row >= d.next {
		return now, nil
	}
	dev, off := s.smLocation(st, row)
	return s.devices[dev].Write(now, value, off)
}

// FlushUpdates drains dirty cache entries to SM (the §A.3 write-back path)
// and returns the completion time of the last write.
func (s *Store) FlushUpdates(now simclock.Time) (simclock.Time, error) {
	done := now
	var firstErr error
	s.rowCache.FlushDirty(func(k cache.Key, v []byte) {
		st := s.tableByID(k.Table)
		if st == nil || st.target != placement.SM {
			return
		}
		dev, off := s.smLocation(st, k.Row)
		t, err := s.devices[dev].Write(now, v, off)
		if err != nil && firstErr == nil {
			firstErr = err
			return
		}
		if t > done {
			done = t
		}
	})
	return done, firstErr
}

func (s *Store) tableByID(id int32) *tableState {
	for _, st := range s.tables {
		if int32(st.spec.ID) == id {
			return st
		}
	}
	return nil
}

// UpdateIntervalLimit returns the minimum model-update interval the SM
// endurance supports (§3's endurance equation) given the store's devices
// and the SM-resident model bytes.
func (s *Store) UpdateIntervalLimit() time.Duration {
	var modelBytes, capBytes int64
	for _, st := range s.tables {
		if st.target == placement.SM {
			modelBytes += st.storedSpec.SizeBytes()
		}
	}
	for _, d := range s.devices {
		capBytes += d.Capacity()
	}
	return blockdev.UpdateInterval(modelBytes, capBytes, blockdev.Spec(s.cfg.SMTech).EnduranceDWPD)
}

// WarmupOverprovision computes §A.4's capacity over-provisioning needed to
// offset post-update cold-cache slowdown: (r·w)/(p·t), where r is the
// fraction of hosts updating at a time, w the warmup duration, p the
// relative performance during warmup, and t the update interval.
func WarmupOverprovision(r, p float64, warmup, interval time.Duration) float64 {
	if p <= 0 || interval <= 0 {
		return 0
	}
	return (r * warmup.Seconds()) / (p * interval.Seconds())
}
