package core

import (
	"math"
	"testing"

	"sdm/internal/blockdev"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// fixture builds a small model instance plus materialized tables.
func fixture(t *testing.T) (*model.Instance, []*embedding.Table) {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	in, err := model.Build(cfg, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := in.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return in, tables
}

func openStore(t *testing.T, in *model.Instance, tables []*embedding.Table, cfg Config) (*Store, *simclock.Clock) {
	t.Helper()
	var clk simclock.Clock
	s, err := Open(in, tables, cfg, &clk)
	if err != nil {
		t.Fatal(err)
	}
	return s, &clk
}

// checkAgainstOracle pools a trace through the store and compares every
// output against flat in-memory pooling of the original tables.
func checkAgainstOracle(t *testing.T, s *Store, in *model.Instance, tables []*embedding.Table, qs []workload.Query) {
	t.Helper()
	now := s.LoadDone()
	for qi, q := range qs {
		outs := s.AllocOutputs(q)
		res, err := s.PoolQuery(now, q, outs)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if res.UserIODone < now || res.ItemIODone < now {
			t.Fatalf("query %d: IO completion went backwards", qi)
		}
		now = res.UserIODone
		for oi, op := range q.Ops {
			want := make([]float32, in.Tables[op.Table].Dim)
			for b, pool := range op.Pools {
				if err := tables[op.Table].Pool(want, pool); err != nil {
					t.Fatal(err)
				}
				for k := range want {
					if d := math.Abs(float64(outs[oi][b][k] - want[k])); d > 1e-4 {
						t.Fatalf("query %d op %d pool %d elem %d: %g vs oracle %g",
							qi, oi, b, k, outs[oi][b][k], want[k])
					}
				}
			}
		}
	}
}

func trace(t *testing.T, in *model.Instance, n int, seed uint64) []workload.Query {
	t.Helper()
	g, err := workload.NewGenerator(in, workload.Config{Seed: seed, NumUsers: 50})
	if err != nil {
		t.Fatal(err)
	}
	return g.GenerateTrace(n)
}

func TestStoreMatchesOracleBaseline(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1})
	checkAgainstOracle(t, s, in, tables, trace(t, in, 20, 1))
}

func TestStoreMatchesOracleSGL(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, Ring: uring.Config{SGL: true}})
	checkAgainstOracle(t, s, in, tables, trace(t, in, 20, 2))
}

func TestStoreMatchesOraclePruned(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, Prune: true})
	if s.Stats().MapperFMBytes == 0 {
		t.Fatal("pruned store must account mapper FM bytes")
	}
	checkAgainstOracle(t, s, in, tables, trace(t, in, 20, 3))
}

func TestStoreMatchesOracleDepruned(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, Prune: true, Deprune: true})
	if s.Stats().MapperFMBytes != 0 {
		t.Fatal("depruned store must free all mapper FM")
	}
	if s.Stats().DeprunedTables == 0 {
		t.Fatal("deprune should have materialized tables")
	}
	checkAgainstOracle(t, s, in, tables, trace(t, in, 20, 4))
}

func TestStoreMatchesOracleDequantAtLoad(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, DequantAtLoad: true, Ring: uring.Config{SGL: true}})
	checkAgainstOracle(t, s, in, tables, trace(t, in, 15, 5))
}

func TestStoreMatchesOracleMmap(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, UseMmap: true})
	checkAgainstOracle(t, s, in, tables, trace(t, in, 10, 6))
}

func TestStoreMatchesOraclePooledCache(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{
		Seed: 1, PooledCacheBytes: 1 << 20, PooledLenThreshold: 2,
		Ring: uring.Config{SGL: true},
	})
	// Replay the same trace twice so pooled-cache hits serve real queries.
	qs := trace(t, in, 15, 7)
	checkAgainstOracle(t, s, in, tables, qs)
	checkAgainstOracle(t, s, in, tables, qs)
	if s.PooledStats().Hits == 0 {
		t.Fatal("replayed trace should hit the pooled cache")
	}
}

func TestStoreMatchesOracleCacheVariants(t *testing.T) {
	for _, kind := range []CacheKind{CacheDual, CacheMemOptimized, CacheCPUOptimized} {
		in, tables := fixture(t)
		s, _ := openStore(t, in, tables, Config{Seed: 1, CacheKind: kind, CachePartitions: 2})
		checkAgainstOracle(t, s, in, tables, trace(t, in, 10, 8))
	}
}

func TestCacheWarmsUp(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, CacheBytes: 32 << 20, Ring: uring.Config{SGL: true}})
	qs := trace(t, in, 60, 9)
	now := s.LoadDone()
	for _, q := range qs {
		outs := s.AllocOutputs(q)
		if _, err := s.PoolQuery(now, q, outs); err != nil {
			t.Fatal(err)
		}
	}
	cold := s.CacheStats().HitRate()
	// Re-run the same queries against a warm cache.
	before := s.CacheStats()
	for _, q := range qs {
		outs := s.AllocOutputs(q)
		if _, err := s.PoolQuery(now, q, outs); err != nil {
			t.Fatal(err)
		}
	}
	after := s.CacheStats()
	warmHits := after.Hits - before.Hits
	warmTotal := warmHits + (after.Misses - before.Misses)
	warm := float64(warmHits) / float64(warmTotal)
	if warm <= cold {
		t.Fatalf("warm hit rate %.2f should exceed cold %.2f", warm, cold)
	}
	if warm < 0.9 {
		t.Fatalf("replayed trace should be ≈fully cached, hit=%.2f", warm)
	}
}

func TestDepruneExtraAccesses(t *testing.T) {
	// §4.5: de-pruning sends a few extra (zero-row) reads to SM and the
	// cache — measured at +2.5% requests in the paper.
	in, tables := fixture(t)
	qs := trace(t, in, 80, 10)

	pruned, _ := openStore(t, in, tables, Config{Seed: 1, Prune: true})
	depruned, _ := openStore(t, in, tables, Config{Seed: 1, Prune: true, Deprune: true})
	run := func(s *Store) Stats {
		now := s.LoadDone()
		for _, q := range qs {
			outs := s.AllocOutputs(q)
			if _, err := s.PoolQuery(now, q, outs); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats()
	}
	sp := run(pruned)
	sd := run(depruned)
	if sp.MapperSkips == 0 {
		t.Fatal("pruned store should skip pruned rows via mapper")
	}
	if sd.ZeroRowReads == 0 {
		t.Fatal("depruned store should read zero rows (cache pollution)")
	}
	// De-pruning turns mapper skips into real reads: more SM traffic.
	if sd.SMReads+sd.FMDirectReads <= sp.SMReads+sp.FMDirectReads {
		t.Fatal("deprune should increase total row reads")
	}
	// And the depruned store must free mapper FM for cache.
	if sd.EffCacheBytes <= sp.EffCacheBytes {
		t.Fatal("deprune should enlarge the effective cache budget")
	}
}

func TestSGLSavesFMBandwidthAndBus(t *testing.T) {
	in, tables := fixture(t)
	qs := trace(t, in, 40, 11)
	run := func(sgl bool) (*Store, Stats) {
		s, _ := openStore(t, in, tables, Config{Seed: 1, Ring: uring.Config{SGL: sgl}, CacheBytes: 1 << 14})
		now := s.LoadDone()
		for _, q := range qs {
			outs := s.AllocOutputs(q)
			if _, err := s.PoolQuery(now, q, outs); err != nil {
				t.Fatal(err)
			}
		}
		return s, s.Stats()
	}
	sBlock, stBlock := run(false)
	sSGL, stSGL := run(true)
	// §4.3: without SGL, >2× FM bandwidth per byte pulled from SM.
	if stBlock.FMBytesMoved <= 2*stSGL.FMBytesMoved {
		t.Fatalf("block-mode FM traffic %d should far exceed SGL %d",
			stBlock.FMBytesMoved, stSGL.FMBytesMoved)
	}
	// §4.1.1: SGL saves most of the bus bandwidth.
	if sav := sSGL.DeviceStats().BusSavings(); sav < 0.5 {
		t.Fatalf("SGL bus savings %.2f too low", sav)
	}
	if sav := sBlock.DeviceStats().BusSavings(); sav != 0 {
		t.Fatalf("block reads should have no bus savings, got %.2f", sav)
	}
}

func TestPlacementFMDirect(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{
		Seed: 1,
		Placement: placement.Config{
			Policy: placement.FixedFMWithCache, UserTablesOnly: true,
			DRAMBudget: 1 << 30, // everything fits: all FM
		},
	})
	qs := trace(t, in, 10, 12)
	now := s.LoadDone()
	for _, q := range qs {
		outs := s.AllocOutputs(q)
		res, err := s.PoolQuery(now, q, outs)
		if err != nil {
			t.Fatal(err)
		}
		if res.SMReads != 0 {
			t.Fatal("all-FM placement should never touch SM")
		}
	}
	if s.Stats().SMReads != 0 {
		t.Fatal("SM read counter should stay zero")
	}
}

func TestUpdateRowOfflineAndOnline(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1, Ring: uring.Config{SGL: true}})
	// Pick an SM-resident user table and a non-pruned row.
	tbl := 0
	spec := in.Tables[tbl]
	newVal := make([]byte, spec.RowBytes())
	for i := range newVal {
		newVal[i] = byte(i)
	}
	now := s.LoadDone()
	if _, err := s.UpdateRow(now, tbl, 3, newVal, UpdateOffline); err != nil {
		t.Fatal(err)
	}
	// Read back through the store path: craft a single-row query.
	op := workload.TableOp{Table: tbl, Pools: [][]int64{{3}}}
	out := [][]float32{make([]float32, spec.Dim)}
	if _, err := s.PoolOp(now, op, out); err != nil {
		t.Fatal(err)
	}
	// Online update goes cache-first, then flushes.
	if _, err := s.UpdateRow(now, tbl, 5, newVal, UpdateOnline); err != nil {
		t.Fatal(err)
	}
	devWritesBefore := s.DeviceStats().Writes
	if _, err := s.FlushUpdates(now); err != nil {
		t.Fatal(err)
	}
	if s.DeviceStats().Writes <= devWritesBefore {
		t.Fatal("flush should write dirty rows to SM")
	}
}

func TestUpdateErrors(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1})
	if _, err := s.UpdateRow(0, 99, 0, nil, UpdateOffline); err == nil {
		t.Fatal("bad table should fail")
	}
	if _, err := s.UpdateRow(0, 0, 0, []byte{1}, UpdateOffline); err == nil {
		t.Fatal("wrong row size should fail")
	}
}

func TestUpdateIntervalLimit(t *testing.T) {
	in, tables := fixture(t)
	nand, _ := openStore(t, in, tables, Config{Seed: 1, SMTech: blockdev.NandFlash})
	opt, _ := openStore(t, in, tables, Config{Seed: 1, SMTech: blockdev.OptaneSSD})
	ni, oi := nand.UpdateIntervalLimit(), opt.UpdateIntervalLimit()
	if ni <= 0 || oi <= 0 {
		t.Fatal("intervals must be positive")
	}
	if oi >= ni {
		t.Fatalf("Optane endurance should allow more frequent updates (%v vs %v)", oi, ni)
	}
}

func TestWarmupOverprovision(t *testing.T) {
	// §A.4 worked example: r=10%, w=5min, p=50%, t=30min → 1.2%... the
	// paper's arithmetic (r·w)/(p·t) = (0.10·5)/(0.50·30) = 3.33%; its
	// printed example swaps w and t producing 1.2%* — we implement the
	// formula as defined.
	const minute = 60 * 1e9
	got := WarmupOverprovision(0.10, 0.50, 5*minute, 30*minute)
	if math.Abs(got-0.0333) > 0.001 {
		t.Fatalf("overprovision %.4f, want 0.0333", got)
	}
	if WarmupOverprovision(0.1, 0, 1, 1) != 0 {
		t.Fatal("p=0 should return 0")
	}
}

func TestPerTableOutstandingThrottle(t *testing.T) {
	in, tables := fixture(t)
	free, _ := openStore(t, in, tables, Config{Seed: 1, CacheBytes: 1 << 12})
	capped, _ := openStore(t, in, tables, Config{Seed: 1, CacheBytes: 1 << 12, PerTableOutstanding: 1})
	qs := trace(t, in, 10, 13)
	run := func(s *Store) simclock.Time {
		now := s.LoadDone()
		var last simclock.Time
		for _, q := range qs {
			outs := s.AllocOutputs(q)
			res, err := s.PoolQuery(now, q, outs)
			if err != nil {
				t.Fatal(err)
			}
			if res.UserIODone > last {
				last = res.UserIODone
			}
		}
		return last - s.LoadDone()
	}
	tFree, tCapped := run(free), run(capped)
	if tCapped <= tFree {
		t.Fatalf("per-table throttle should serialize IOs: capped %v vs free %v",
			tCapped.Duration(), tFree.Duration())
	}
}

func TestLoadAccounting(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1})
	st := s.Stats()
	if st.LoadSMBytes == 0 || st.LoadDuration <= 0 {
		t.Fatalf("load accounting empty: %+v", st)
	}
	if s.DeviceStats().BytesWritten == 0 {
		t.Fatal("model load must wear the device (endurance)")
	}
	// SM bytes loaded should approximate the user-table payload.
	if st.LoadSMBytes < in.UserBytes()/2 {
		t.Fatalf("loaded %d, user bytes %d", st.LoadSMBytes, in.UserBytes())
	}
}

func TestOpenValidation(t *testing.T) {
	in, tables := fixture(t)
	var clk simclock.Clock
	if _, err := Open(in, tables[:2], Config{}, &clk); err == nil {
		t.Fatal("table/spec mismatch should fail")
	}
	if _, err := Open(in, tables, Config{Placement: placement.Config{DenySM: []int{999}}}, &clk); err == nil {
		t.Fatal("bad placement must propagate")
	}
}

func TestPoolOpValidation(t *testing.T) {
	in, tables := fixture(t)
	s, _ := openStore(t, in, tables, Config{Seed: 1})
	if _, err := s.PoolOp(0, workload.TableOp{Table: 99}, nil); err == nil {
		t.Fatal("bad table should fail")
	}
	op := workload.TableOp{Table: 0, Pools: [][]int64{{0}}}
	if _, err := s.PoolOp(0, op, [][]float32{make([]float32, 1)}); err == nil {
		t.Fatal("wrong output dim should fail")
	}
	if _, err := s.PoolOp(0, op, nil); err == nil {
		t.Fatal("missing outputs should fail")
	}
}

func TestCacheKindString(t *testing.T) {
	for _, k := range []CacheKind{CacheDual, CacheMemOptimized, CacheCPUOptimized} {
		if k.String() == "" {
			t.Errorf("empty name for %d", k)
		}
	}
}

func TestIsZeroRow(t *testing.T) {
	in, tables := fixture(t)
	_ = in
	// Find a zero row and a non-zero row in the first table.
	tb := tables[0]
	dim := tb.Spec().Dim
	row := make([]float32, dim)
	var zero, nonzero []byte
	for r := int64(0); r < tb.Spec().Rows && (zero == nil || nonzero == nil); r++ {
		if err := tb.DequantizeRow(row, r); err != nil {
			t.Fatal(err)
		}
		all := true
		for _, v := range row {
			if v != 0 {
				all = false
				break
			}
		}
		raw, _ := tb.Row(r)
		if all && zero == nil {
			zero = raw
		}
		if !all && nonzero == nil {
			nonzero = raw
		}
	}
	if zero == nil || nonzero == nil {
		t.Skip("fixture lacks zero/non-zero rows")
	}
	if !isZeroRow(zero, tb.Spec().QType) {
		t.Fatal("zero row not detected")
	}
	if isZeroRow(nonzero, tb.Spec().QType) {
		t.Fatal("non-zero row misdetected")
	}
}
