package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// TestSteadyStateQueryAllocs pins the allocation budget of the warm query
// path. After the arena, caches, scratch and result buffers reach steady
// state, a query at Parallelism 1 allocates nothing — the whole chain
// (NextShared, OutputsFor, PoolQuery with deferred-IO replay) runs on
// recycled storage. At Parallelism 4 only the per-query fan-out machinery
// (worker goroutines and their error slice) remains.
func TestSteadyStateQueryAllocs(t *testing.T) {
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", p), func(t *testing.T) {
			in, tables := fixture(t)
			cfg := Config{
				Seed: 7, SMTech: blockdev.NandFlash,
				Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20,
				Parallelism: p,
			}
			s, _ := openStore(t, in, tables, cfg)
			gen, err := workload.NewGenerator(in, workload.Config{Seed: 7, NumUsers: 500, UserAlpha: 0.8})
			if err != nil {
				t.Fatal(err)
			}
			var obuf OutputBuf
			now := s.LoadDone()
			step := func() {
				now += simclock.Time(time.Millisecond)
				q := gen.NextShared()
				outs := s.OutputsFor(q, &obuf)
				if _, err := s.PoolQuery(now, q, outs); err != nil {
					t.Fatal(err)
				}
			}
			// Warm to steady state: caches filled, every reusable buffer at
			// its high-water size.
			for i := 0; i < 3000; i++ {
				step()
			}
			avg := testing.AllocsPerRun(500, step)
			// Parallelism 1 is the zero-alloc contract; the parallel path
			// pays a handful of allocations for goroutine fan-out.
			limit := 0.0
			if p > 1 {
				limit = 16
			}
			if avg > limit {
				t.Fatalf("steady-state query allocates %.2f objects/run, want <= %g", avg, limit)
			}
		})
	}
}

// TestOpenReplicaMatchesOpen verifies the construction-sharing fast path:
// a replica opened from a donor must match a full Open with the same
// config bit for bit — load completion time, stats, device state and every
// query observable — with only the construction cost differing.
func TestOpenReplicaMatchesOpen(t *testing.T) {
	in, tables := fixture(t)
	cfg := Config{
		Seed: 3, SMTech: blockdev.NandFlash,
		Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20,
		PerTableOutstanding: 2,
	}
	var dclk simclock.Clock
	donor, err := Open(in, tables, cfg, &dclk)
	if err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.Seed = 9
	var rclk simclock.Clock
	replica, err := OpenReplica(donor, rcfg, &rclk)
	if err != nil {
		t.Fatal(err)
	}
	var fclk simclock.Clock
	fresh, err := Open(in, tables, rcfg, &fclk)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := replica.LoadDone(), fresh.LoadDone(); got != want {
		t.Fatalf("replica LoadDone %v, fresh Open %v", got, want)
	}
	if got, want := replica.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-load store stats diverge:\nreplica %+v\nfresh   %+v", got, want)
	}
	if got, want := replica.DeviceStats(), fresh.DeviceStats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-load device stats diverge:\nreplica %+v\nfresh   %+v", got, want)
	}

	// Same trace through both stores: every per-query result, all final
	// stats and every pooled output must match exactly. The per-table
	// throttle is configured so the deferred-IO replay path (including the
	// drained-entry memo) is exercised.
	qs := trace(t, in, 40, 123)
	run := func(s *Store) ([]QueryResult, Stats, blockdev.Stats, uring.Stats, float64) {
		results := make([]QueryResult, 0, len(qs))
		sum := 0.0
		now := s.LoadDone()
		for _, q := range qs {
			outs := s.AllocOutputs(q)
			res, err := s.PoolQuery(now, q, outs)
			if err != nil {
				t.Fatal(err)
			}
			now = res.UserIODone
			results = append(results, res)
			for _, op := range outs {
				for _, pool := range op {
					for _, v := range pool {
						sum += float64(v)
					}
				}
			}
		}
		return results, s.Stats(), s.DeviceStats(), s.RingStats(), sum
	}
	rRes, rStats, rDev, rRing, rSum := run(replica)
	fRes, fStats, fDev, fRing, fSum := run(fresh)
	if !reflect.DeepEqual(rRes, fRes) {
		t.Fatal("per-query results diverge between replica and fresh Open")
	}
	if !reflect.DeepEqual(rStats, fStats) {
		t.Fatalf("store stats diverge:\nreplica %+v\nfresh   %+v", rStats, fStats)
	}
	if !reflect.DeepEqual(rDev, fDev) {
		t.Fatalf("device stats diverge:\nreplica %+v\nfresh   %+v", rDev, fDev)
	}
	if !reflect.DeepEqual(rRing, fRing) {
		t.Fatalf("ring stats diverge:\nreplica %+v\nfresh   %+v", rRing, fRing)
	}
	if rSum != fSum {
		t.Fatalf("output checksums diverge: replica %g, fresh %g", rSum, fSum)
	}

	// The donor must be untouched by replica construction and replica
	// queries: its own run still matches a pristine store with its seed.
	var pclk simclock.Clock
	pristine, err := Open(in, tables, cfg, &pclk)
	if err != nil {
		t.Fatal(err)
	}
	dRes, dStats, dDev, dRing, dSum := run(donor)
	pRes, pStats, pDev, pRing, pSum := run(pristine)
	if !reflect.DeepEqual(dRes, pRes) || !reflect.DeepEqual(dStats, pStats) ||
		!reflect.DeepEqual(dDev, pDev) || !reflect.DeepEqual(dRing, pRing) || dSum != pSum {
		t.Fatal("donor behavior changed after serving as a replica source")
	}
}

// TestOpenReplicaRejectsConfigDrift verifies the only permitted config
// difference between donor and replica is the seed.
func TestOpenReplicaRejectsConfigDrift(t *testing.T) {
	in, tables := fixture(t)
	cfg := Config{Seed: 3, SMTech: blockdev.NandFlash, Ring: uring.Config{SGL: true}}
	var clk simclock.Clock
	donor, err := Open(in, tables, cfg, &clk)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = 4
	bad.CacheBytes = 1 << 24
	var rclk simclock.Clock
	if _, err := OpenReplica(donor, bad, &rclk); err == nil {
		t.Fatal("OpenReplica accepted a config that differs beyond Seed")
	}
}
