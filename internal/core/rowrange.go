// Row-range residency: the partial-table migration primitives. Whole-table
// migration (adaptive.go) wastes FM exactly where the paper says it is
// scarcest — row popularity within a table is Zipf-skewed, so most bytes of
// an FM-resident table are cold. A swappable table's rows therefore
// partition into fixed-width ranges (Config.MigrationRangeBytes); while the
// table's target stays SM, individual [lo, hi) row windows can be promoted
// into FM and demoted back through the same chunked, ring-accounted
// Migration machinery, and per-range lookup counters (folded in operator
// order, so parallelism-invariant) give the adapt subsystem the demand
// densities its range-granular knapsack ranks.

package core

import (
	"fmt"

	"sdm/internal/placement"
)

// numRanges returns how many row ranges the table partitions into (0 for
// tables not provisioned for range migration).
func (st *tableState) numRanges() int {
	if st.rangeRows <= 0 {
		return 0
	}
	return int((st.rows + st.rangeRows - 1) / st.rangeRows)
}

// rangeBounds returns the row window [lo, hi) of range r.
func (st *tableState) rangeBounds(r int) (lo, hi int64) {
	lo = int64(r) * st.rangeRows
	hi = lo + st.rangeRows
	if hi > st.rows {
		hi = st.rows
	}
	return lo, hi
}

// fmRangeRow returns row's stored bytes when its range is FM-resident,
// nil when the row serves from SM. Read-only during query execution, so
// the parallel engine may call it from any worker.
func (st *tableState) fmRangeRow(row int64) []byte {
	if st.fmRange == nil {
		return nil
	}
	b := st.fmRange[row/st.rangeRows]
	if b == nil {
		return nil
	}
	off := (row % st.rangeRows) * int64(st.rowBytes)
	return b[off : off+int64(st.rowBytes)]
}

// RangeStat is one row range's live runtime view: its geometry, current
// residency and the cumulative lookups it received. Like TableStat, the
// counters are folded in operator order and therefore identical at any
// engine parallelism; samplers subtract consecutive snapshots.
type RangeStat struct {
	Table int
	Range int
	// Rows and Bytes are the range's row count and stored footprint (the
	// bytes a range migration moves).
	Rows  int64
	Bytes int64
	// FMResident reports whether the range currently serves from FM. It
	// is false while the whole table is FM-resident (TableStat.Target
	// tracks whole-table placement).
	FMResident bool
	// Lookups counts row lookups that landed in this range while the
	// table was SM-target (whole-table FM serving bypasses range
	// accounting).
	Lookups uint64
}

// RangeStats appends one RangeStat per row range of every range-managed
// (swappable) table, in (table, range) order, and returns dst — the
// range-granular telemetry feed of the adapt subsystem.
func (s *Store) RangeStats(dst []RangeStat) []RangeStat {
	dst = dst[:0]
	for i, st := range s.tables {
		rb := int64(st.rowBytes)
		for r := range st.rangeLookups {
			lo, hi := st.rangeBounds(r)
			dst = append(dst, RangeStat{
				Table:      i,
				Range:      r,
				Rows:       hi - lo,
				Bytes:      (hi - lo) * rb,
				FMResident: st.fmRange != nil && st.fmRange[r] != nil,
				Lookups:    st.rangeLookups[r],
			})
		}
	}
	return dst
}

// RangeRowsOf returns table's row-range width in rows (0 when the table is
// not provisioned for range migration).
func (s *Store) RangeRowsOf(table int) int64 {
	if table < 0 || table >= len(s.tables) {
		return 0
	}
	return s.tables[table].rangeRows
}

// rangeMigrationState validates a range-migration request: the table must
// be swappable and SM-target (whole-table FM residency supersedes ranges),
// the window must be range-aligned, and every covered range must currently
// be resident (demote) or non-resident (promote).
func (s *Store) rangeMigrationState(table int, lo, hi int64, wantResident bool) (*tableState, error) {
	st, err := s.migrationState(table, placement.SM)
	if err != nil {
		return nil, err
	}
	if st.rangeRows <= 0 {
		return nil, fmt.Errorf("core: table %d is not range-provisioned", table)
	}
	if lo < 0 || hi > st.rows || lo >= hi {
		return nil, fmt.Errorf("core: table %d row window [%d, %d) outside [0, %d)", table, lo, hi, st.rows)
	}
	if lo%st.rangeRows != 0 || (hi%st.rangeRows != 0 && hi != st.rows) {
		return nil, fmt.Errorf("core: table %d window [%d, %d) not aligned to %d-row ranges", table, lo, hi, st.rangeRows)
	}
	for r := int(lo / st.rangeRows); r < st.numRanges() && int64(r)*st.rangeRows < hi; r++ {
		resident := st.fmRange != nil && st.fmRange[r] != nil
		if resident != wantResident {
			return nil, fmt.Errorf("core: table %d range %d is %s-resident", table, r,
				map[bool]string{true: "FM", false: "SM"}[resident])
		}
	}
	return st, nil
}

// BeginPromoteRange starts migrating the row window [lo, hi) of an
// SM-target table into FM: chunks read the window's share of the stripes
// back through the rings (competing with foreground queries for device
// time), and Commit installs the rows as FM-resident ranges — §A.3 online
// updates pending in the cache are folded in, exactly as a whole-table
// promotion does. lo and hi must align to the table's range width.
func (s *Store) BeginPromoteRange(table int, lo, hi int64, chunkBytes int) (*Migration, error) {
	st, err := s.rangeMigrationState(table, lo, hi, false)
	if err != nil {
		return nil, err
	}
	if st.migIn != nil {
		return nil, fmt.Errorf("core: table %d already has a promotion in flight", table)
	}
	if chunkBytes <= 0 {
		chunkBytes = 256 << 10
	}
	m := newMigration(s, st, table, true, chunkBytes)
	m.ranged = true
	m.begin, m.end, m.next = lo, hi, lo
	m.data = make([]byte, (hi-lo)*int64(st.rowBytes))
	st.migIn = m
	return m, nil
}

// BeginDemoteRange starts migrating the FM-resident row window [lo, hi)
// of an SM-target table back to its reserved stripe: chunks write through
// the rings (program latency + endurance wear), and Commit releases the
// FM copies. The table's cache shard keeps any entries from the SM path —
// they were held coherent while the ranges were FM-resident.
func (s *Store) BeginDemoteRange(table int, lo, hi int64, chunkBytes int) (*Migration, error) {
	st, err := s.rangeMigrationState(table, lo, hi, true)
	if err != nil {
		return nil, err
	}
	if st.migOut != nil {
		return nil, fmt.Errorf("core: table %d already has a demotion in flight", table)
	}
	if chunkBytes <= 0 {
		chunkBytes = 256 << 10
	}
	m := newMigration(s, st, table, false, chunkBytes)
	m.ranged = true
	m.begin, m.end, m.next = lo, hi, lo
	st.migOut = m
	return m, nil
}

// FMResidentBytes returns the table's bytes currently served from FM:
// the full stored footprint when the table is FM-target, else the bytes
// of its FM-resident ranges.
func (s *Store) FMResidentBytes(table int) int64 {
	if table < 0 || table >= len(s.tables) {
		return 0
	}
	st := s.tables[table]
	if st.target == placement.FM {
		return st.storedSpec.SizeBytes()
	}
	return st.fmRangeBytes
}
