package core

import (
	"testing"

	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// rangeFixture opens a ReserveSM store whose swappable tables split into
// several row ranges.
func rangeFixture(t *testing.T, parallelism int) (*Store, *workloadOracle) {
	t.Helper()
	cfg := Config{
		Seed: 5, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 16, MigrationRangeBytes: 8 << 10,
		Parallelism: parallelism,
		Placement:   placement.Config{Policy: placement.SMOnlyWithCache, UserTablesOnly: true},
	}
	s, inst, tables, _ := adaptiveFixture(t, cfg)
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: 7, NumUsers: 200})
	if err != nil {
		t.Fatal(err)
	}
	return s, &workloadOracle{t: t, s: s, inst: inst, tables: tables, gen: gen}
}

// workloadOracle replays generated queries through the store and checks
// every pooled output of the watched table against the original flat table.
type workloadOracle struct {
	t      *testing.T
	s      *Store
	inst   *model.Instance
	tables []*embedding.Table
	gen    *workload.Generator
}

func (o *workloadOracle) check(now simclock.Time, table int, queries int) {
	o.t.Helper()
	for i := 0; i < queries; i++ {
		q := o.gen.Next()
		outs := o.s.AllocOutputs(q)
		if _, err := o.s.PoolQuery(now+simclock.Time(i)*1e6, q, outs); err != nil {
			o.t.Fatal(err)
		}
		for oi, op := range q.Ops {
			if op.Table != table {
				continue
			}
			want := make([]float32, o.inst.Tables[table].Dim)
			for b, pool := range op.Pools {
				if err := o.tables[table].Pool(want, pool); err != nil {
					o.t.Fatal(err)
				}
				for e := range want {
					if want[e] != outs[oi][b][e] {
						o.t.Fatalf("element %d diverged: %g vs %g", e, outs[oi][b][e], want[e])
					}
				}
			}
		}
	}
}

// driveRange runs a migration to completion at now and commits it.
func driveRange(t *testing.T, m *Migration, now simclock.Time) simclock.Time {
	t.Helper()
	for !m.Finished() {
		if _, _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	return m.Done() + 1
}

func TestRangeMigrationRoundTripMatchesOracle(t *testing.T) {
	s, oracle := rangeFixture(t, 1)
	const table = 1
	rr := s.RangeRowsOf(table)
	if rr <= 0 {
		t.Fatal("swappable table should be range-provisioned")
	}
	rs := s.RangeStats(nil)
	perTable := 0
	for _, r := range rs {
		if r.Table == table {
			perTable++
		}
	}
	if perTable < 3 {
		t.Fatalf("fixture should split table %d into several ranges, got %d", table, perTable)
	}

	// Promote the two head ranges.
	now := s.LoadDone()
	m, err := s.BeginPromoteRange(table, 0, 2*rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !m.Finished() {
		n, done, err := m.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatal("chunk issued no bytes")
		}
		if done < now {
			t.Fatalf("chunk completion %v before issue %v", done, now)
		}
		steps++
	}
	if steps < 2 {
		t.Fatalf("range migration should be chunked, got %d steps", steps)
	}
	wantBytes := 2 * rr * int64(s.tables[table].rowBytes)
	if m.BytesMoved() != wantBytes {
		t.Fatalf("moved %d bytes, want %d (2 ranges)", m.BytesMoved(), wantBytes)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.TargetOf(table) != placement.SM {
		t.Fatal("range promotion must not flip the whole-table target")
	}
	if got := s.FMResidentBytes(table); got != wantBytes {
		t.Fatalf("FM-resident bytes %d, want %d", got, wantBytes)
	}
	st := s.Stats()
	if st.RangeMigrations != 1 || st.MigratedSMToFMBytes == 0 {
		t.Fatalf("range migration counters not recorded: %+v", st)
	}

	// Oracle: pooled outputs over the mixed-residency table match the
	// flat table, and head-range rows are served from FM.
	now = m.Done() + 1
	before := s.Stats()
	oracle.check(now, table, 25)
	after := s.Stats()
	if after.RangeFMReads == before.RangeFMReads {
		t.Fatal("no lookups served from the promoted ranges")
	}
	if after.FMDirectReads-before.FMDirectReads < after.RangeFMReads-before.RangeFMReads {
		t.Fatal("range-served reads must count as FM-direct")
	}

	// Demote one of the two ranges, keep the other; then demote the rest.
	now += simclock.Time(1e9)
	d, err := s.BeginDemoteRange(table, rr, 2*rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, d, now)
	if got := s.FMResidentBytes(table); got != wantBytes/2 {
		t.Fatalf("after partial demotion FM-resident bytes %d, want %d", got, wantBytes/2)
	}
	oracle.check(now, table, 25)

	d2, err := s.BeginDemoteRange(table, 0, rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, d2, now)
	if got := s.FMResidentBytes(table); got != 0 {
		t.Fatalf("after full demotion FM-resident bytes %d, want 0", got)
	}
	oracle.check(now, table, 25)
	fin := s.Stats()
	if fin.RangeMigrations != 3 || fin.MigratedFMToSMBytes == 0 {
		t.Fatalf("demotion counters not recorded: %+v", fin)
	}
}

func TestRangeMigrationValidation(t *testing.T) {
	s, _ := rangeFixture(t, 1)
	const table = 0
	rr := s.RangeRowsOf(table)
	rows := s.tables[table].rows
	if _, err := s.BeginPromoteRange(table, 1, rr, 0); err == nil {
		t.Fatal("misaligned window should be rejected")
	}
	if _, err := s.BeginPromoteRange(table, 0, 0, 0); err == nil {
		t.Fatal("empty window should be rejected")
	}
	if _, err := s.BeginPromoteRange(table, 0, rows+rr, 0); err == nil {
		t.Fatal("out-of-bounds window should be rejected")
	}
	if _, err := s.BeginDemoteRange(table, 0, rr, 0); err == nil {
		t.Fatal("demoting a non-resident range should be rejected")
	}

	now := s.LoadDone()
	m, err := s.BeginPromoteRange(table, 0, rr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err == nil {
		t.Fatal("commit before the final chunk should fail")
	}
	now = driveRange(t, m, now)
	if _, err := s.BeginPromoteRange(table, 0, rr, 0); err == nil {
		t.Fatal("promoting an already-resident range should be rejected")
	}
	if _, err := s.BeginPromote(table, 0); err == nil {
		t.Fatal("whole-table promotion with resident ranges should be rejected")
	}
	// The tail window (unaligned end == rows) is legal.
	lastLo := ((rows - 1) / rr) * rr
	m2, err := s.BeginPromoteRange(table, lastLo, rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	driveRange(t, m2, now)

	// A non-swappable item table has no ranges.
	item := len(s.tables) - 1
	if s.RangeRowsOf(item) != 0 {
		t.Fatal("item table should not be range-provisioned")
	}
	if _, err := s.BeginPromoteRange(item, 0, 1, 0); err == nil {
		t.Fatal("range-promoting a non-swappable table should fail")
	}
}

func TestMigrationAbort(t *testing.T) {
	s, oracle := rangeFixture(t, 1)
	const table = 2
	rr := s.RangeRowsOf(table)
	now := s.LoadDone()
	m, err := s.BeginPromoteRange(table, 0, 2*rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Step(now); err != nil {
		t.Fatal(err)
	}
	m.Abort()
	if !m.Aborted() {
		t.Fatal("Aborted not reported")
	}
	if _, _, err := m.Step(now); err == nil {
		t.Fatal("Step after Abort should fail")
	}
	if err := m.Commit(); err == nil {
		t.Fatal("Commit after Abort should fail")
	}
	if s.FMResidentBytes(table) != 0 {
		t.Fatal("aborted promotion must not install ranges")
	}
	if s.Stats().Migrations != 0 {
		t.Fatal("aborted migration must not count as committed")
	}
	// The table is untouched: a fresh migration over the same window
	// starts from scratch and round-trips correctly.
	m2, err := s.BeginPromoteRange(table, 0, 2*rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, m2, now)
	oracle.check(now, table, 20)

	// Abort mid-demotion: the partially rewritten SM window stays
	// unreachable (rows remain FM-resident) and serving stays correct.
	d, err := s.BeginDemoteRange(table, 0, rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Step(now); err != nil {
		t.Fatal(err)
	}
	d.Abort()
	if s.FMResidentBytes(table) != 2*rr*int64(s.tables[table].rowBytes) {
		t.Fatal("aborted demotion must keep the ranges FM-resident")
	}
	oracle.check(now, table, 20)
	// The next demotion rewrites the window from its first row.
	d2, err := s.BeginDemoteRange(table, 0, 2*rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, d2, now)
	oracle.check(now, table, 20)
}

func TestRangeMigrationPreservesOnlineUpdates(t *testing.T) {
	// §A.3 online updates land cache-first as dirty entries. A range
	// promotion must fold the in-window ones into the FM copy while
	// out-of-window entries stay dirty (still cache-first); updates
	// applied to an FM-resident range must survive its demotion.
	s, _ := rangeFixture(t, 1)
	const table = 0
	st := s.tables[table]
	rr := st.rangeRows
	spec := st.spec

	donor := make([]byte, st.rowBytes)
	flat := func(row int64) []byte {
		dev, off := s.smLocation(st, row)
		buf := make([]byte, st.rowBytes)
		if err := s.devices[dev].PeekInto(buf, off); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	copy(donor, flat(7))

	now := s.LoadDone()
	inRow, outRow := int64(3), 2*rr+1 // rows inside and outside the window
	if outRow >= st.rows {
		t.Fatalf("fixture table too small: %d rows", st.rows)
	}
	if _, err := s.UpdateRow(now, table, inRow, donor, UpdateOnline); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateRow(now, table, outRow, donor, UpdateOnline); err != nil {
		t.Fatal(err)
	}

	pool := func(when simclock.Time, row int64) []float32 {
		t.Helper()
		out := [][]float32{make([]float32, spec.Dim)}
		op := workload.TableOp{Table: table, Pools: [][]int64{{row}}}
		if _, err := s.PoolOp(when, op, out); err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	oracle := pool(now, 7)
	equal := func(got []float32, stage string) {
		t.Helper()
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("%s: element %d = %g, want %g (update lost)", stage, i, got[i], oracle[i])
			}
		}
	}

	// Promote [0, 2·rr) with both dirty entries outstanding.
	m, err := s.BeginPromoteRange(table, 0, 2*rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, m, now)
	equal(pool(now, inRow), "in-window row after range promotion")
	equal(pool(now, outRow), "out-of-window row after range promotion")

	// The out-of-window entry must still be dirty: draining write-back
	// refreshes its SM copy.
	if _, err := s.FlushUpdates(now); err != nil {
		t.Fatal(err)
	}
	equal(pool(now, outRow), "out-of-window row after write-back")

	// Update a row whose range is FM-resident, then demote the window.
	if _, err := s.UpdateRow(now, table, rr+2, donor, UpdateOnline); err != nil {
		t.Fatal(err)
	}
	equal(pool(now, rr+2), "FM-range row updated in place")
	d, err := s.BeginDemoteRange(table, 0, 2*rr, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, d, now)
	equal(pool(now, inRow), "in-window row after demotion")
	equal(pool(now, rr+2), "FM-updated row after demotion")
	equal(pool(now, outRow), "out-of-window row after demotion")
}

func TestRangeCountersParallelismInvariant(t *testing.T) {
	// Per-range lookup counters are folded in operator order, so they are
	// bit-identical at any engine width.
	run := func(par int) []RangeStat {
		s, o := rangeFixture(t, par)
		now := s.LoadDone()
		for i := 0; i < 40; i++ {
			q := o.gen.Next()
			outs := s.AllocOutputs(q)
			if _, err := s.PoolQuery(now+simclock.Time(i)*1e6, q, outs); err != nil {
				t.Fatal(err)
			}
		}
		return s.RangeStats(nil)
	}
	r1 := run(1)
	r4 := run(4)
	if len(r1) == 0 || len(r1) != len(r4) {
		t.Fatalf("range stats size mismatch: %d vs %d", len(r1), len(r4))
	}
	var total uint64
	for i := range r1 {
		if r1[i] != r4[i] {
			t.Fatalf("range stat %d diverged across parallelism:\n%+v\n%+v", i, r1[i], r4[i])
		}
		total += r1[i].Lookups
	}
	if total == 0 {
		t.Fatal("no range lookups recorded")
	}
}

func TestUpdateDuringInFlightDemotion(t *testing.T) {
	// An update racing a demotion whose chunk already carried the row to
	// SM must write through: otherwise Commit drops the fresh FM copy
	// behind a merely evictable cache entry and the stripe keeps the old
	// bytes forever.
	s, _ := rangeFixture(t, 1)
	const table = 1
	st := s.tables[table]
	rr := st.rangeRows

	now := s.LoadDone()
	m, err := s.BeginPromoteRange(table, 0, rr, 0)
	if err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, m, now)

	d, err := s.BeginDemoteRange(table, 0, rr, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginDemoteRange(table, 0, rr, 0); err == nil {
		t.Fatal("second in-flight demotion of the same table should be rejected")
	}
	// Issue the first chunk — it writes row 0's old bytes to SM.
	if _, _, err := d.Step(now); err != nil {
		t.Fatal(err)
	}
	if d.next <= 0 {
		t.Fatal("first chunk issued no rows")
	}
	donor := make([]byte, st.rowBytes)
	dev, off := s.smLocation(st, 7)
	if err := s.devices[dev].PeekInto(donor, off); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateRow(now, table, 0, donor, UpdateOnline); err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, d, now)

	// The SM stripe — not just the cache — must hold the updated bytes.
	got := make([]byte, st.rowBytes)
	dev0, off0 := s.smLocation(st, 0)
	if err := s.devices[dev0].PeekInto(got, off0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != donor[i] {
			t.Fatalf("SM byte %d stale after racing update: %d vs %d", i, got[i], donor[i])
		}
	}
	_ = now
}

func TestUpdateDuringInFlightPromotion(t *testing.T) {
	// An offline update racing a promotion whose chunk already read the
	// row must patch the staging image: the cache entry it leaves behind
	// is clean (evictable), so a stale FM install would eventually serve
	// old bytes on the no-cache FM fast path.
	s, _ := rangeFixture(t, 1)
	const table = 1
	st := s.tables[table]
	rr := st.rangeRows

	now := s.LoadDone()
	m, err := s.BeginPromoteRange(table, 0, rr, 2<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginPromoteRange(table, 0, rr, 0); err == nil {
		t.Fatal("second in-flight promotion of the same table should be rejected")
	}
	if _, _, err := m.Step(now); err != nil { // chunk 0 reads row 0's old bytes
		t.Fatal(err)
	}
	donor := make([]byte, st.rowBytes)
	dev, off := s.smLocation(st, 7)
	if err := s.devices[dev].PeekInto(donor, off); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateRow(now, table, 0, donor, UpdateOffline); err != nil {
		t.Fatal(err)
	}
	now = driveRange(t, m, now)

	// Serve row 0 via the FM-range fast path (no cache involved) and
	// compare against row 7's dequantized value.
	spec := st.spec
	pool := func(row int64) []float32 {
		out := [][]float32{make([]float32, spec.Dim)}
		op := workload.TableOp{Table: table, Pools: [][]int64{{row}}}
		if _, err := s.PoolOp(now, op, out); err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	want := pool(7)
	got := pool(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: promoted FM image kept pre-update bytes: %g vs %g", i, got[i], want[i])
		}
	}
	if s.Stats().RangeFMReads == 0 {
		t.Fatal("row 0 was not served from the FM range (test would be vacuous)")
	}
}
