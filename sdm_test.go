package sdm

import (
	"math"
	"testing"
)

// TestQuickstartFlow exercises the public facade end to end: build a
// scaled model, open an SDM store, serve queries, and validate against
// flat pooling.
func TestQuickstartFlow(t *testing.T) {
	inst, err := Build(benchModel(), 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var clk Clock
	store, err := Open(inst, tables, Config{
		SMTech: OptaneSSD,
		Ring:   RingConfig{SGL: true},
	}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(inst, WorkloadConfig{Seed: 1, NumUsers: 50})
	if err != nil {
		t.Fatal(err)
	}
	now := store.LoadDone()
	for i := 0; i < 10; i++ {
		q := gen.Next()
		outs := store.AllocOutputs(q)
		res, err := store.PoolQuery(now, q, outs)
		if err != nil {
			t.Fatal(err)
		}
		if res.CPUTime <= 0 {
			t.Fatal("CPU accounting missing")
		}
		for oi, op := range q.Ops {
			want := make([]float32, inst.Tables[op.Table].Dim)
			for b, pool := range op.Pools {
				if err := tables[op.Table].Pool(want, pool); err != nil {
					t.Fatal(err)
				}
				for k := range want {
					if math.Abs(float64(outs[oi][b][k]-want[k])) > 1e-4 {
						t.Fatalf("facade output mismatch at op %d", oi)
					}
				}
			}
		}
	}
}

func TestFacadeConstants(t *testing.T) {
	if len(Catalog()) != 5 {
		t.Fatal("catalog should expose the 5 Table 1 technologies")
	}
	if Spec(OptaneSSD).MaxIOPS != 4e6 {
		t.Fatal("Optane spec passthrough")
	}
	for _, mk := range []func() ModelConfig{M1, M2, M3} {
		if err := mk().Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, sku := range []HostSpec{HWL(), HWS(), HWSS(), HWAN(), HWAO(), HWF()} {
		if sku.Name == "" || sku.Cores <= 0 {
			t.Fatalf("bad SKU %+v", sku)
		}
	}
}

// TestHostFacade runs the serving path through the facade.
func TestHostFacade(t *testing.T) {
	inst, err := Build(benchModel(), 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var clk Clock
	store, err := Open(inst, tables, Config{Ring: RingConfig{SGL: true}}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(inst, WorkloadConfig{Seed: 3, NumUsers: 50})
	if err != nil {
		t.Fatal(err)
	}
	host, err := NewHost(inst, store, tables, gen, &clk, HostConfig{Spec: HWSS(), InterOp: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := host.RunOpenLoop(25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedQPS <= 0 || res.Latency.P95() <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}
