# Targets mirror the CI pipeline (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet fmt-check test race bench ci

all: build test

build:
	$(GO) build ./...
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — the CI smoke run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check test race bench
