# Targets mirror the CI pipeline (.github/workflows/ci.yml).

GO ?= go
REV ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: all build vet fmt-check test race bench bench-json ci

all: build test

build:
	$(GO) build ./...
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — the CI smoke run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Machine-readable results of every experiment for this revision — the
# benchmark-trajectory artifact CI uploads (BENCH_<rev>.json per PR).
bench-json:
	$(GO) run ./cmd/sdmbench -json all > BENCH_$(REV).json

ci: build vet fmt-check test race bench
