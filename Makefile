# Targets mirror the CI pipeline (.github/workflows/ci.yml).

GO ?= go
REV ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: all build vet lint fmt-check test race bench bench-scale bench-json bench-diff bench-gate print-bench-gated print-bench-regress-only profile ci

all: build test

build:
	$(GO) build ./...
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

# Determinism lint: sdmvet (cmd/sdmvet, internal/lint) enforces the
# bit-identical virtual-time invariant statically — no wall clock, no
# unseeded randomness, no map-order-dependent emission, no
# Duration/virtual-time unit mixing. Sanctioned sites carry
# `//sdm:allow <analyzer> <reason>`. Also runs go vet with -unsafeptr.
lint:
	$(GO) run ./cmd/sdmvet ./...
	$(GO) vet -unsafeptr ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — the CI smoke run.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The 64-host fleet benchmark with allocation reporting (B/op, allocs/op)
# — the quick local check that the zero-alloc hot path held up.
bench-scale:
	$(GO) test -bench=BenchmarkFleetScale -benchmem -run='^$$' .

# Machine-readable results of every experiment for this revision — the
# benchmark-trajectory artifact CI uploads (BENCH_<rev>.json per PR).
bench-json:
	$(GO) run ./cmd/sdmbench -json all > BENCH_$(REV).json

# The committed baseline the current tree is diffed against (tracked
# files only, so locally generated BENCH_<rev>.json outputs never shadow
# it; override with BENCH_BASELINE=...). Repo policy: exactly one
# baseline is committed at a time — replace it to re-baseline.
BENCH_BASELINE ?= $(shell git ls-files 'BENCH_*.json' 2>/dev/null)

# Re-run every experiment and print per-benchmark deltas against the
# committed baseline. Warn-only by default; add BENCH_DIFF_FLAGS=-fail-on-change
# to gate on drift locally.
bench-diff:
	@set -- $(BENCH_BASELINE); test $$# -eq 1 || { \
		echo "expected exactly one committed BENCH_*.json baseline, got: '$(BENCH_BASELINE)'" >&2; exit 1; }
	$(GO) run ./cmd/sdmbench -json all > bench-current.json
	$(GO) run ./cmd/benchdiff $(BENCH_DIFF_FLAGS) $(BENCH_BASELINE) bench-current.json

# The experiment ids CI gates at 10% (query-engine and cluster benchmarks;
# the adapt drills drift/rowrange/coord and the slo serving drill stay
# warn-only). This is the single source of truth — the CI workflow reads
# it via `make -s print-bench-gated`.
BENCH_GATED = fig1,tab1,fig3,tab2,fig4,fig5,fig6,tab3,tab4,tab8,tab9,tab10,tab11,cluster,sgl,mmap,deprune,dequant,interop,polling,warmup,update

# Cost-budget ids gated direction-aware: only increases beyond 10% fail
# (the alloc experiment's B/query and allocs/query rows — lower is
# strictly better, so improvements land without a re-baseline).
BENCH_REGRESS_ONLY = alloc

print-bench-gated:
	@echo $(BENCH_GATED)

print-bench-regress-only:
	@echo $(BENCH_REGRESS_ONLY)

# The CI gate, runnable locally: fails on >10% regressions of the gated
# benchmarks against the committed baseline. Allocation-budget rows are
# gated regression-only (growth fails, shrinkage passes).
bench-gate:
	$(MAKE) bench-diff BENCH_DIFF_FLAGS="-tol 10 -fail-on $(BENCH_GATED) -regress-only $(BENCH_REGRESS_ONLY)"

# Wall-clock profiles of the scale-up path: a 64-host metered fleet under
# sdmcluster with CPU + heap profiles. Phases carry pprof labels
# (sdm_phase=route+admit/exec/migrate); slice them with e.g.
#   go tool pprof -tagfocus sdm_phase=exec cpu.pprof
profile:
	$(GO) run ./cmd/sdmcluster -hosts 64 -qps 4000 -queries 8000 -policy sticky \
		-metrics metrics.txt -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof, mem.pprof, metrics.txt"

ci: build vet lint fmt-check test race bench
